(* Tests for the round-based extended TA layer (Ta.Rta): the unrolled
   dBFT superround is bit-identical to the hand-written Simplified_ta,
   name (de-)mangling round-trips, the mangling certificate rejects
   tampered origin maps, and slicing commutes with unrolling (QCheck). *)

module A = Ta.Automaton
module G = Ta.Guard
module P = Ta.Pexpr
module Rta = Ta.Rta
module An = Analysis

(* ------------------------------------------------------------------ *)
(* Bit-identity with the hand-written model.                            *)

let test_dbft_bit_identical () =
  let got = Models.Dbft_rta.automaton in
  let want = Models.Simplified_ta.automaton in
  Alcotest.(check (list string)) "locations" want.A.locations got.A.locations;
  Alcotest.(check (list string)) "shared" want.A.shared got.A.shared;
  Alcotest.(check (list string)) "initial" want.A.initial got.A.initial;
  Alcotest.(check (list string)) "rule names"
    (List.map (fun (r : A.rule) -> r.name) want.A.rules)
    (List.map (fun (r : A.rule) -> r.name) got.A.rules);
  Alcotest.(check bool) "whole automaton" true (got = want)

let test_dbft_broken_bit_identical () =
  Alcotest.(check bool) "broken-resilience automaton" true
    (Models.Dbft_rta.unrolled_broken_resilience.Rta.automaton
    = Models.Simplified_ta.automaton_broken_resilience)

let test_dbft_specs_identical () =
  Alcotest.(check bool) "Inv2_0" true
    (Models.Dbft_rta.inv2_0 = Models.Simplified_ta.inv2_0);
  Alcotest.(check bool) "Good_0" true
    (Models.Dbft_rta.good_0 = Models.Simplified_ta.good_0)

(* ------------------------------------------------------------------ *)
(* Name (de-)mangling.                                                  *)

let test_mangling_round_trip () =
  let u = Models.Dbft_rta.unrolled in
  Alcotest.(check string) "round-0 location" "M0" (Rta.loc u ~round:0 "M0");
  Alcotest.(check string) "round-1 location" "M0x" (Rta.loc u ~round:1 "M0");
  Alcotest.(check string) "pinned round 0" "D1" (Rta.loc u ~round:0 "D1");
  Alcotest.(check string) "pinned round 1" "D0" (Rta.loc u ~round:1 "D0");
  Alcotest.(check string) "shared round 1" "aux1x" (Rta.shared_var u ~round:1 "aux1");
  (* Every unrolled name maps back to its (round, template) origin, and
     re-mangling that origin yields the same name. *)
  List.iter
    (fun l ->
      match Rta.origin_of_location u l with
      | Some (r, base) -> Alcotest.(check string) ("loc " ^ l) l (Rta.loc u ~round:r base)
      | None -> Alcotest.failf "location %s has no origin" l)
    u.Rta.automaton.A.locations;
  List.iter
    (fun x ->
      match Rta.origin_of_shared u x with
      | Some (-1, base) -> Alcotest.(check string) ("global " ^ x) x base
      | Some (r, base) ->
        Alcotest.(check string) ("shared " ^ x) x (Rta.shared_var u ~round:r base)
      | None -> Alcotest.failf "shared %s has no origin" x)
    u.Rta.automaton.A.shared

let test_explain_name () =
  let u = Models.Dbft_rta.unrolled in
  Alcotest.(check string) "suffixed" "M0 (round 1)" (Rta.explain_name u "M0x");
  Alcotest.(check string) "pinned" "D0 (round 1)" (Rta.explain_name u "D0");
  Alcotest.(check string) "rule" "s5 (round 1)" (Rta.explain_name u "s5x");
  Alcotest.(check string) "unknown passes through" "huh" (Rta.explain_name u "huh")

let test_validate_rejects_tampering () =
  let u = Models.Dbft_rta.unrolled in
  Alcotest.(check bool) "intact certificate" true (Rta.validate u = Ok ());
  let swap = function
    | ("M0", o) -> ("M0x", o)
    | ("M0x", o) -> ("M0", o)
    | e -> e
  in
  let tampered = { u with Rta.location_origin = List.map swap u.Rta.location_origin } in
  Alcotest.(check bool) "swapped origins rejected" true
    (match Rta.validate tampered with Error _ -> true | Ok () -> false)

(* A counterexample witness over an unrolled automaton de-mangles to
   (round, template) coordinates through the origin maps, and mangles
   back to the original witness exactly: Witness.rename composed both
   ways is the identity, so a user can read (and report) template-level
   runs without losing the ability to replay the unrolled ones. *)
let test_witness_demangle_round_trip () =
  let module W = Holistic.Witness in
  let u = Models.Phase_king.unrolled in
  let r = Holistic.Checker.verify u.Rta.automaton Models.Phase_king.one_survives in
  let w =
    match r.Holistic.Checker.outcome with
    | Holistic.Checker.Violated w -> w
    | _ -> Alcotest.fail "PK-NoOne should be violated"
  in
  Alcotest.(check bool) "witness has steps" true (w.W.steps <> []);
  (* De-mangle every name to "round#template" ("g#x" for globals). *)
  let demangle_loc l =
    match Rta.origin_of_location u l with
    | Some (r, base) -> Printf.sprintf "%d#%s" r base
    | None -> Alcotest.failf "location %s has no origin" l
  in
  let demangle_shared x =
    match Rta.origin_of_shared u x with
    | Some (-1, base) -> "g#" ^ base
    | Some (r, base) -> Printf.sprintf "%d#%s" r base
    | None -> Alcotest.failf "shared %s has no origin" x
  in
  let demangle_rule n =
    match Rta.origin_of_rule u n with
    | Some (r, base) -> Printf.sprintf "%d#%s" r base
    | None -> Alcotest.failf "rule %s has no origin" n
  in
  let demangled =
    W.rename ~rule:demangle_rule ~location:demangle_loc ~shared:demangle_shared w
  in
  Alcotest.(check bool) "de-mangling changed the witness" true (demangled <> w);
  (* The template coordinates are readable as such: the violated-state
     counter is last-round V1, i.e. round (rounds-1) of template V1. *)
  let last = Models.Phase_king.rounds - 1 in
  let final = List.nth demangled.W.steps (List.length demangled.W.steps - 1) in
  Alcotest.(check bool)
    (Printf.sprintf "final step holds %d#V1" last)
    true
    (List.exists
       (fun (l, k) -> l = Printf.sprintf "%d#V1" last && k > 0)
       final.W.counters);
  (* Mangle back through the certified maps: exact round trip. *)
  let split s =
    match String.index_opt s '#' with
    | Some i ->
      (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
    | None -> Alcotest.failf "not a demangled name: %s" s
  in
  let mangle_loc s =
    let r, base = split s in
    Rta.loc u ~round:(int_of_string r) base
  in
  let mangle_shared s =
    let r, base = split s in
    if r = "g" then base else Rta.shared_var u ~round:(int_of_string r) base
  in
  let mangle_rule s =
    let r, base = split s in
    let round = int_of_string r in
    match
      List.find_opt (fun (_, o) -> o = (round, base)) u.Rta.rule_origin
    with
    | Some (name, _) -> name
    | None -> Alcotest.failf "no unrolled rule for %s" s
  in
  let restored =
    W.rename ~rule:mangle_rule ~location:mangle_loc ~shared:mangle_shared demangled
  in
  Alcotest.(check bool) "mangle (demangle w) = w" true (restored = w)

(* ------------------------------------------------------------------ *)
(* Unroll validation errors.                                            *)

let test_legacy_suffix_rejects_three_rounds () =
  Alcotest.(check bool) "legacy suffix limited to 2 rounds" true
    (try
       ignore (Rta.unroll ~suffix:Rta.legacy_suffix ~rounds:3 Models.Dbft_rta.rta);
       false
     with Invalid_argument _ -> true)

let test_constant_suffix_collides () =
  Alcotest.(check bool) "non-injective suffix rejected" true
    (try
       ignore (Rta.unroll ~suffix:(fun _ -> "") ~rounds:2 Models.Dbft_rta.rta);
       false
     with Invalid_argument _ -> true)

let test_cyclic_phase_rejected () =
  Alcotest.(check bool) "cyclic Here-graph rejected" true
    (try
       ignore
         (Rta.phase ~name:"p" ~locations:[ "A"; "B" ] ~entry:[ "A" ]
            ~rules:
              [
                Rta.rule "r1" ~source:"A" ~target:(Rta.Here "B");
                Rta.rule "r2" ~source:"B" ~target:(Rta.Here "A");
              ]
            ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Default-suffix unrolling at other round counts stays certified.      *)

let test_default_suffix_rounds () =
  (* The dBFT template pins D0/D1 as round-unique decision sinks, so it
     unrolls to exactly one superround; recurring the pinned phases is a
     name collision by design. *)
  let u = Rta.unroll ~rounds:2 Models.Dbft_rta.rta in
  Alcotest.(check bool) "rounds=2 certified" true (Rta.validate u = Ok ());
  Alcotest.(check bool) "rounds=2 DAG" true (A.is_dag u.Rta.automaton);
  Alcotest.(check bool) "pinned recurrence rejected" true
    (try
       ignore (Rta.unroll ~rounds:4 Models.Dbft_rta.rta);
       false
     with Invalid_argument _ -> true);
  (* An unpinned single-phase template unrolls to any round count. *)
  let ph =
    Rta.phase ~name:"p" ~locations:[ "A"; "B" ] ~entry:[ "A" ]
      ~shared:[ "v" ]
      ~rules:
        [
          Rta.rule "r1" ~source:"A" ~target:(Rta.Here "B") ~update:[ ("v", 1) ];
          Rta.rule "r2" ~source:"B" ~target:(Rta.Next "A")
            ~guard:(G.ge1 "v" (P.param "n"));
        ]
      ()
  in
  let small =
    Rta.make ~name:"loop" ~params:[ "n" ]
      ~resilience:[ P.of_terms [ ("n", 1) ] (-1) ]
      ~population:(P.param "n") ~phases:[ ph ] ()
  in
  List.iter
    (fun rounds ->
      let u = Rta.unroll ~rounds small in
      Alcotest.(check bool)
        (Printf.sprintf "loop rounds=%d certified" rounds)
        true
        (Rta.validate u = Ok ());
      Alcotest.(check int)
        (Printf.sprintf "loop rounds=%d locations" rounds)
        (2 * rounds)
        (List.length u.Rta.automaton.A.locations))
    [ 1; 2; 5 ]

(* ------------------------------------------------------------------ *)
(* QCheck: slicing commutes with unrolling.                             *)

(* Random round-based TAs: a cycle of [n_phases] phases, each a little
   DAG of [n_locs] locations with random Here rules, random guards over
   one round-local variable, and Next rules into the successor's entry.
   Some locations are deliberately unreachable so slicing has work to
   do uniformly across rounds. *)
let gen_rta =
  let open QCheck.Gen in
  let* n_phases = 1 -- 3 in
  let* n_locs = 2 -- 4 in
  let* dead_tail = 0 -- 1 in
  let loc p i = Printf.sprintf "P%dL%d" p i in
  let phases =
    List.init n_phases (fun p ->
        let locations = List.init (n_locs + dead_tail) (loc p) in
        let entry = [ loc p 0 ] in
        let var = Printf.sprintf "v%d" p in
        (* A forward chain L0 -> L1 -> ... keeps every phase a DAG; the
           dead tail locations get no incoming rule. *)
        let here_rules =
          List.init (n_locs - 1) (fun i ->
              Rta.rule
                (Printf.sprintf "h%d_%d" p i)
                ~source:(loc p i)
                ~target:(Rta.Here (loc p (i + 1)))
                ~guard:(G.ge1 var (P.const 0))
                ~update:[ (var, 1) ])
        in
        let next_rule =
          Rta.rule (Printf.sprintf "n%d" p)
            ~source:(loc p (n_locs - 1))
            ~target:(Rta.Next (loc ((p + 1) mod n_phases) 0))
        in
        Rta.phase
          ~name:(Printf.sprintf "ph%d" p)
          ~locations ~entry ~shared:[ var ]
          ~rules:(here_rules @ [ next_rule ])
          ())
  in
  let* rounds_factor = 1 -- 2 in
  return
    ( Rta.make ~name:"qcheck_rta" ~params:[ "n" ]
        ~resilience:[ P.of_terms [ ("n", 1) ] (-1) ]
        ~population:(P.param "n") ~phases (),
      n_phases * rounds_factor )

let arb_rta =
  QCheck.make ~print:(fun (rta, rounds) ->
      Printf.sprintf "%s with %d phases, %d rounds" rta.Rta.name
        (List.length rta.Rta.phases) rounds)
    gen_rta

let strip_name (ta : A.t) = { ta with A.name = "" }

let qcheck_slice_commutes =
  QCheck.Test.make ~name:"slice (unroll rta) = unroll (slice_rta rta)" ~count:60 arb_rta
    (fun (rta, rounds) ->
      let u = Rta.unroll ~rounds rta in
      let sliced_flat, _ = An.slice u.Rta.automaton in
      let rta', _ = An.slice_rta ~rounds rta in
      let u' = Rta.unroll ~rounds rta' in
      strip_name sliced_flat = strip_name u'.Rta.automaton)

let qcheck_slice_rta_certified =
  QCheck.Test.make ~name:"slice_rta output still unrolls certified" ~count:60 arb_rta
    (fun (rta, rounds) ->
      let rta', _ = An.slice_rta ~rounds rta in
      let u = Rta.unroll ~rounds rta' in
      Rta.validate u = Ok ())

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest [ qcheck_slice_commutes; qcheck_slice_rta_certified ] in
  Alcotest.run "rta"
    [
      ( "bit-identity",
        [
          Alcotest.test_case "dbft unroll = hand-written" `Quick test_dbft_bit_identical;
          Alcotest.test_case "broken resilience variant" `Quick
            test_dbft_broken_bit_identical;
          Alcotest.test_case "Inv2_0/Good_0 specs" `Quick test_dbft_specs_identical;
        ] );
      ( "mangling",
        [
          Alcotest.test_case "round trip" `Quick test_mangling_round_trip;
          Alcotest.test_case "explain_name" `Quick test_explain_name;
          Alcotest.test_case "certificate rejects tampering" `Quick
            test_validate_rejects_tampering;
          Alcotest.test_case "witness de-mangling round trip" `Quick
            test_witness_demangle_round_trip;
        ] );
      ( "validation",
        [
          Alcotest.test_case "legacy suffix 3 rounds" `Quick
            test_legacy_suffix_rejects_three_rounds;
          Alcotest.test_case "constant suffix collides" `Quick
            test_constant_suffix_collides;
          Alcotest.test_case "cyclic phase" `Quick test_cyclic_phase_rejected;
          Alcotest.test_case "default suffix rounds" `Quick test_default_suffix_rounds;
        ] );
      ("slice-commutation", qsuite);
    ]
