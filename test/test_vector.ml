(* Tests for reliable broadcast and the Red Belly vector ("superblock")
   consensus built on n parallel binary consensus instances. *)

module Rb = Dbft.Reliable_broadcast
module Net = Simnet.Network

let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

(* ------------------------------------------------------------------ *)
(* Reliable broadcast in isolation: drive it with a simple fair loop.   *)

let run_rb ~n ~t ~byz_equivocate ~seed ~broadcasts =
  let net : Rb.msg Net.t = Net.create ~n in
  let delivered = Array.make_matrix n n None in
  let endpoints =
    Array.init n (fun i ->
        Rb.create ~id:i ~n ~t net ~on_deliver:(fun ~origin ~value ->
            delivered.(i).(origin) <- Some value))
  in
  List.iter (fun (i, v) -> Rb.broadcast endpoints.(i) v) broadcasts;
  (* A Byzantine origin (id n-1) equivocating its init messages. *)
  if byz_equivocate then
    for dest = 0 to n - 1 do
      let value = if 2 * dest < n then "evil-A" else "evil-B" in
      Net.send net ~src:(n - 1) ~dest (Rb.Init { origin = n - 1; value })
    done;
  let rng = Random.State.make [| seed |] in
  let source =
    Simnet.Driver.of_network net ~handle:(fun ~src ~dest msg ->
        if not (byz_equivocate && dest = n - 1) then Rb.handle endpoints.(dest) ~src msg)
  in
  ignore (Simnet.Driver.run ~max_steps:100_000 ~rng [ source ]);
  delivered

let test_rb_validity_totality () =
  let delivered =
    run_rb ~n:4 ~t:1 ~byz_equivocate:false ~seed:5
      ~broadcasts:[ (0, "alpha"); (1, "beta"); (2, "gamma"); (3, "delta") ]
  in
  for origin = 0 to 3 do
    for i = 0 to 3 do
      Alcotest.(check (option string))
        (Printf.sprintf "p%d delivers origin %d" i origin)
        (Some (List.nth [ "alpha"; "beta"; "gamma"; "delta" ] origin))
        delivered.(i).(origin)
    done
  done

let test_rb_consistency_under_equivocation () =
  let delivered =
    run_rb ~n:4 ~t:1 ~byz_equivocate:true ~seed:9
      ~broadcasts:[ (0, "alpha"); (1, "beta"); (2, "gamma") ]
  in
  (* Correct origins delivered everywhere. *)
  for origin = 0 to 2 do
    for i = 0 to 2 do
      Alcotest.(check bool) "correct delivered" true (delivered.(i).(origin) <> None)
    done
  done;
  (* The equivocating origin: correct processes never deliver two
     different values (with a 2-2 split of echoes, nobody can gather
     2t+1 = 3 echoes for either value, so typically nothing is
     delivered; consistency is what matters). *)
  let values =
    List.filter_map (fun i -> delivered.(i).(3)) [ 0; 1; 2 ] |> List.sort_uniq compare
  in
  Alcotest.(check bool) "at most one value" true (List.length values <= 1)

let rb_props =
  [
    prop "rb validity and consistency across seeds" 50 QCheck.(int_bound 9999) (fun seed ->
        let delivered =
          run_rb ~n:4 ~t:1 ~byz_equivocate:true ~seed
            ~broadcasts:[ (0, "a"); (1, "b"); (2, "c") ]
        in
        (* All correct-origin proposals delivered consistently... *)
        List.for_all
          (fun origin ->
            List.for_all
              (fun i ->
                delivered.(i).(origin) = Some (List.nth [ "a"; "b"; "c" ] origin))
              [ 0; 1; 2 ])
          [ 0; 1; 2 ]
        (* ... and the Byzantine origin never splits the correct ones. *)
        && List.length
             (List.filter_map (fun i -> delivered.(i).(3)) [ 0; 1; 2 ]
             |> List.sort_uniq compare)
           <= 1);
  ]

(* ------------------------------------------------------------------ *)
(* Vector consensus.                                                    *)

let test_vector_all_correct () =
  let r =
    Dbft.Vector.run
      (Dbft.Vector.config ~n:4 ~t:1
         ~proposals:[ (0, "a"); (1, "b"); (2, "c"); (3, "d") ]
         ~seed:3 ())
  in
  Alcotest.(check bool) "decided" true r.Dbft.Vector.all_decided;
  Alcotest.(check bool) "agreement" true r.Dbft.Vector.agreement;
  Alcotest.(check bool) "integrity" true r.Dbft.Vector.integrity;
  (* At least n - t proposals make it into the superblock. *)
  match r.Dbft.Vector.superblocks with
  | (_, sb) :: _ -> Alcotest.(check bool) "size >= n-t" true (List.length sb >= 3)
  | [] -> Alcotest.fail "no superblocks"

let test_vector_byzantine_proposer () =
  let r =
    Dbft.Vector.run
      (Dbft.Vector.config ~n:4 ~t:1
         ~proposals:[ (0, "a"); (1, "b"); (2, "c") ]
         ~byzantine:[ 3 ] ~seed:7 ())
  in
  Alcotest.(check bool) "decided" true r.Dbft.Vector.all_decided;
  Alcotest.(check bool) "agreement" true r.Dbft.Vector.agreement;
  Alcotest.(check bool) "integrity" true r.Dbft.Vector.integrity;
  (* The equivocated proposal cannot enter the superblock with different
     contents at different processes; with a 2-2 equivocation it is
     simply excluded. *)
  List.iter
    (fun (_, sb) ->
      Alcotest.(check bool) "no equivocation accepted" true
        (not (List.exists (fun (j, _) -> j = 3) sb)))
    r.Dbft.Vector.superblocks

let vector_props =
  [
    prop "vector consensus agreement+integrity across seeds" 25 QCheck.(int_bound 9999)
      (fun seed ->
        let r =
          Dbft.Vector.run
            (Dbft.Vector.config ~n:4 ~t:1
               ~proposals:[ (0, "a"); (1, "b"); (2, "c") ]
               ~byzantine:[ 3 ] ~seed ())
        in
        r.Dbft.Vector.all_decided && r.Dbft.Vector.agreement && r.Dbft.Vector.integrity);
  ]

let () =
  Alcotest.run "vector"
    [
      ( "reliable-broadcast",
        [
          Alcotest.test_case "validity and totality" `Quick test_rb_validity_totality;
          Alcotest.test_case "consistency under equivocation" `Quick
            test_rb_consistency_under_equivocation;
        ] );
      ("rb-props", rb_props);
      ( "vector-consensus",
        [
          Alcotest.test_case "all-correct committee" `Quick test_vector_all_correct;
          Alcotest.test_case "byzantine proposer excluded" `Quick
            test_vector_byzantine_proposer;
        ] );
      ("vector-props", vector_props);
    ]
