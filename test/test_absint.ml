(* The abstract-interpretation invariant engine (lib/analysis/absint.ml)
   and its three consumers:

   - the fixpoint itself, pinned on hand-built gadgets: a quantitative
     contradicted guard (TA017/TA020) that the syntactic liveness pass
     cannot see, a dominated guard atom (TA019), and a widening loop
     (TA024) whose join keeps lowering one row's bound until the
     per-row widening limit trips;
   - the checker's static discharge: on every bundled bv property and
     on the gadgets, all four engines (flat/incremental x sequential/
     parallel) with static discharge on must report bit-identical
     outcomes, schema counts and slot totals to the same engine with
     it off, never more solver steps, and emit Static certificates
     that replay through the standalone checker;
   - the strengthened slicer: semantic slicing composes with
     checkpoint/resume, and the checkpoint fingerprint refuses a
     sliced/unsliced mismatch in both directions.

   A qcheck sweep over random small DAG automata (the generator of
   test_incremental) extends the static-vs-nonstatic contract beyond
   the bundled models. *)

module A = Ta.Automaton
module G = Ta.Guard
module P = Ta.Pexpr
module C = Ta.Cond
module S = Ta.Spec
module Ck = Holistic.Checker
module Ab = Analysis.Absint
module D = Analysis.Domain

let limits ?(max_schemas = 100_000) ?(jobs = 1) ?(incremental = true)
    ?(static = true) () =
  { Ck.default_limits with max_schemas; jobs; incremental; static }

let outcome_repr = function
  | Ck.Holds -> "holds"
  | Ck.Violated w -> Format.asprintf "violated@\n%a" Holistic.Witness.pp w
  | Ck.Aborted reason -> "aborted: " ^ reason
  | Ck.Partial { quarantined; reason } ->
    Format.asprintf "partial (%d quarantined): %s" (List.length quarantined) reason

let codes diags = List.map (fun d -> d.Analysis.code) diags
let has_code c diags = List.mem c (codes diags)

(* ------------------------------------------------------------------ *)
(* Gadget 1: quantitative contradiction.  The producer of [x] is live
   and not self-guarded, so the syntactic pass (TA008) keeps [r_gate];
   but one round moves at most [population = n] processes through it,
   so [x] is bounded by [n] and the threshold [n + 1] is statically
   false -> TA017 on the rule, TA020 on its target.                     *)

let contradicted_ta =
  A.make ~name:"contradicted" ~params:[ "n" ] ~shared:[ "x" ]
    ~locations:[ "L0"; "L1"; "L2"; "L3" ]
    ~initial:[ "L0"; "L1" ]
    ~resilience:[ P.of_terms [ ("n", 1) ] (-1) ]
    ~population:(P.param "n")
    ~rules:
      [
        A.rule "r_prod" ~source:"L0" ~target:"L2" ~guard:G.tt
          ~update:[ ("x", 1) ] ~fairness:A.Unfair;
        A.rule "r_gate" ~source:"L1" ~target:"L3"
          ~guard:(G.ge1 "x" (P.of_terms [ ("n", 1) ] 1))
          ~update:[] ~fairness:A.Unfair;
      ]
    ()

let reach_l3_spec =
  S.invariant ~name:"reach-L3" ~ltl:"<>(k[L3] != 0)"
    ~bad:[ ("L3 reached", C.some_nonempty [ "L3" ]) ]
    ()

(* No round switch: one-round capacities, as the linter and the static
   discharge both use on these models. *)
let one_round = { Ab.no_assumptions with mode = Ab.One_round }

let test_contradicted_guard () =
  let ab = Ab.build ~assume:one_round contradicted_ta in
  let gate_atom = { G.shared = [ ("x", 1) ]; bound = P.of_terms [ ("n", 1) ] 1 } in
  (match Ab.false_atom ab gate_atom with
   | Some cap -> Alcotest.(check string) "capacity is n" "n" (P.to_string cap)
   | None -> Alcotest.fail "x >= n+1 should be statically false");
  Alcotest.(check bool) "r_gate dead" false
    (Ab.rule_live ab (List.nth contradicted_ta.rules 1));
  Alcotest.(check bool) "L3 not entered" false (Ab.entered ab "L3");
  Alcotest.(check bool) "L2 entered" true (Ab.entered ab "L2");
  let diags = Analysis.run contradicted_ta in
  Alcotest.(check bool) "TA017 reported" true (has_code "TA017" diags);
  Alcotest.(check bool) "TA020 reported" true (has_code "TA020" diags);
  Alcotest.(check bool) "no TA008 (syntactically live)" false (has_code "TA008" diags)

(* The slicer must use the same fixpoint: r_gate and L3 go away. *)
let test_slice_uses_absint () =
  let sliced, diags = Analysis.slice contradicted_ta in
  Alcotest.(check (list string)) "rules" [ "r_prod" ]
    (List.map (fun (r : A.rule) -> r.name) sliced.rules);
  Alcotest.(check bool) "L3 dropped" false (List.mem "L3" sliced.locations);
  Alcotest.(check bool) "TA017 in slice report" true (has_code "TA017" diags);
  Alcotest.(check bool) "TA016 summary" true (has_code "TA016" diags)

(* ------------------------------------------------------------------ *)
(* Gadget 2: dominated atom.  Within one conjunctive guard, [x >= 2]
   implies [x >= 1]; the weaker atom is redundant -> TA019 (info).      *)

let dominated_ta =
  A.make ~name:"dominated" ~params:[ "n" ] ~shared:[ "x" ]
    ~locations:[ "L0"; "L1"; "L2"; "L3" ]
    ~initial:[ "L0"; "L1" ]
    ~resilience:[ P.of_terms [ ("n", 1) ] (-1) ]
    ~population:(P.param "n")
    ~rules:
      [
        A.rule "r_prod" ~source:"L0" ~target:"L2" ~guard:G.tt
          ~update:[ ("x", 1) ] ~fairness:A.Unfair;
        A.rule "r_both" ~source:"L1" ~target:"L3"
          ~guard:(G.ge1 "x" (P.const 1) @ G.ge1 "x" (P.const 2))
          ~update:[] ~fairness:A.Unfair;
      ]
    ()

let test_dominated_atom () =
  let diags = Analysis.run dominated_ta in
  let ta019 = List.filter (fun d -> d.Analysis.code = "TA019") diags in
  Alcotest.(check int) "one TA019" 1 (List.length ta019);
  let d = List.hd ta019 in
  Alcotest.(check bool) "info severity" true (d.Analysis.severity = Analysis.Info);
  Alcotest.(check bool) "names the redundant atom" true
    (String.length d.Analysis.message > 0
    && d.Analysis.subject = Analysis.Rule "r_both")

(* ------------------------------------------------------------------ *)
(* Gadget 3: widening loop.  Location [t] merges four inflows whose
   lower bounds (x >= 5, 4, 3, 2) arrive on successive sweeps — the
   location list is ordered against the data flow, so each sweep
   propagates one step.  The entailment-min join keeps lowering [t]'s
   row; after [widen_limit] changes the row is widened away -> TA024.   *)

let widening_ta =
  A.make ~name:"widening" ~params:[ "n" ] ~shared:[ "x" ]
    ~locations:
      [ "t"; "a5"; "a4"; "a3"; "a2"; "m1"; "m2b"; "m2a"; "m3c"; "m3b"; "m3a"; "p"; "l0" ]
    ~initial:[ "l0" ]
    ~resilience:[ P.of_terms [ ("n", 1) ] (-1) ]
    ~population:(P.param "n")
    ~rules:
      [
        A.rule "prod" ~source:"l0" ~target:"p" ~guard:G.tt ~update:[ ("x", 5) ]
          ~fairness:A.Unfair;
        A.rule "e5" ~source:"l0" ~target:"a5" ~guard:(G.ge1 "x" (P.const 5)) ~update:[]
          ~fairness:A.Unfair;
        A.rule "e4" ~source:"l0" ~target:"m1" ~guard:(G.ge1 "x" (P.const 4)) ~update:[]
          ~fairness:A.Unfair;
        A.rule "e4b" ~source:"m1" ~target:"a4" ~guard:G.tt ~update:[] ~fairness:A.Unfair;
        A.rule "e3" ~source:"l0" ~target:"m2a" ~guard:(G.ge1 "x" (P.const 3)) ~update:[]
          ~fairness:A.Unfair;
        A.rule "e3b" ~source:"m2a" ~target:"m2b" ~guard:G.tt ~update:[] ~fairness:A.Unfair;
        A.rule "e3c" ~source:"m2b" ~target:"a3" ~guard:G.tt ~update:[] ~fairness:A.Unfair;
        A.rule "e2" ~source:"l0" ~target:"m3a" ~guard:(G.ge1 "x" (P.const 2)) ~update:[]
          ~fairness:A.Unfair;
        A.rule "e2b" ~source:"m3a" ~target:"m3b" ~guard:G.tt ~update:[] ~fairness:A.Unfair;
        A.rule "e2c" ~source:"m3b" ~target:"m3c" ~guard:G.tt ~update:[] ~fairness:A.Unfair;
        A.rule "e2d" ~source:"m3c" ~target:"a2" ~guard:G.tt ~update:[] ~fairness:A.Unfair;
        A.rule "f5" ~source:"a5" ~target:"t" ~guard:G.tt ~update:[] ~fairness:A.Unfair;
        A.rule "f4" ~source:"a4" ~target:"t" ~guard:G.tt ~update:[] ~fairness:A.Unfair;
        A.rule "f3" ~source:"a3" ~target:"t" ~guard:G.tt ~update:[] ~fairness:A.Unfair;
        A.rule "f2" ~source:"a2" ~target:"t" ~guard:G.tt ~update:[] ~fairness:A.Unfair;
      ]
    ()

let test_widening_loop () =
  let ab = Ab.build widening_ta in
  Alcotest.(check bool) "not sweep-capped" false ab.Ab.capped;
  Alcotest.(check bool) "widening fired" true (ab.Ab.widened <> []);
  Alcotest.(check bool) "widened row is at t" true
    (List.exists (fun (l, _) -> l = "t") ab.Ab.widened);
  let diags = Analysis.run widening_ta in
  Alcotest.(check bool) "TA024 reported" true (has_code "TA024" diags)

(* ------------------------------------------------------------------ *)
(* Lower-bound invariant spot check: meeting a guard and shifting an
   update is visible in the synthesized row.                            *)

let invariant_ta =
  A.make ~name:"inv" ~params:[ "n" ] ~shared:[ "x" ]
    ~locations:[ "L0"; "L1"; "L2" ]
    ~initial:[ "L0" ]
    ~resilience:[ P.of_terms [ ("n", 1) ] (-1) ]
    ~population:(P.param "n")
    ~rules:
      [
        A.rule "r_prod" ~source:"L0" ~target:"L2" ~guard:G.tt
          ~update:[ ("x", 1) ] ~fairness:A.Unfair;
        A.rule "r_step" ~source:"L0" ~target:"L1"
          ~guard:(G.ge1 "x" (P.const 1))
          ~update:[ ("x", 2) ] ~fairness:A.Unfair;
      ]
    ()

let test_location_invariant () =
  let ab = Ab.build invariant_ta in
  Alcotest.(check bool) "r_step live" true
    (Ab.rule_live ab (List.nth invariant_ta.rules 1));
  let st = Ab.lower ab "L1" in
  match D.find_row st [ ("x", 1) ] with
  | Some row ->
    (* guard x >= 1 met, update x += 2 shifted: x >= 3 on entry *)
    Alcotest.(check string) "x >= 3 at L1" "3" (P.to_string row.D.lo)
  | None -> Alcotest.fail "expected a lower-bound row for x at L1"

(* Certified refutations: the gadget's spec is refuted at the root
   (L3 is never entered, so the observation k[L3] >= 1 is statically
   false), and the refutation carries a pre-validated certificate. *)
let test_invariants_root () =
  let inv = Analysis.Invariants.build ~spec:reach_l3_spec contradicted_ta in
  Alcotest.(check bool) "refutation available" true (Analysis.Invariants.any inv);
  match Analysis.Invariants.root_refutation inv with
  | None -> Alcotest.fail "expected a root refutation"
  | Some r -> (
    Alcotest.(check bool) "static certificate" true
      (match r.Analysis.Invariants.cert with
       | Smt.Certificate.Static _ -> true
       | _ -> false);
    match
      Smt.Certcheck.validate_query ~atoms:r.Analysis.Invariants.atoms ~branches:[]
        r.Analysis.Invariants.cert
    with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "root certificate rejected: %s" msg)

(* ------------------------------------------------------------------ *)
(* Static discharge vs full solving, all four engine configurations.    *)

let engine_configs =
  [ ("flat seq", false, 1); ("inc seq", true, 1); ("flat par", false, 4); ("inc par", true, 4) ]

let check_static_pair ?(expect_prunes = false) name u spec =
  List.iter
    (fun (cfg, incremental, jobs) ->
      let run static =
        Ck.verify_with_universe ~limits:(limits ~jobs ~incremental ~static ()) u spec
      in
      let plain = run false in
      let stat = run true in
      let label s = Printf.sprintf "%s [%s]: %s" name cfg s in
      Alcotest.(check string) (label "outcome/witness")
        (outcome_repr plain.Ck.outcome) (outcome_repr stat.Ck.outcome);
      Alcotest.(check int) (label "schemas") plain.Ck.stats.schemas_checked
        stat.Ck.stats.schemas_checked;
      Alcotest.(check int) (label "slots") plain.Ck.stats.slots_total
        stat.Ck.stats.slots_total;
      Alcotest.(check int) (label "no statics when off") 0 plain.Ck.stats.static_prunes;
      if jobs = 1 then
        Alcotest.(check bool) (label "steps no worse") true
          (stat.Ck.stats.solver_steps <= plain.Ck.stats.solver_steps);
      if expect_prunes then
        Alcotest.(check bool) (label "static prunes fire") true
          (stat.Ck.stats.static_prunes > 0))
    engine_configs

let test_bundled_bv () =
  let u = Holistic.Universe.build Models.Bv_ta.automaton in
  List.iter
    (fun (spec : S.t) -> check_static_pair ("bv " ^ spec.name) u spec)
    Models.Bv_ta.all_specs

let test_gadget_static_discharge () =
  let u = Holistic.Universe.build contradicted_ta in
  check_static_pair ~expect_prunes:true "contradicted reach-L3" u reach_l3_spec;
  let stat =
    Ck.verify_with_universe ~limits:(limits ~incremental:true ()) u reach_l3_spec
  in
  (match stat.Ck.outcome with
   | Ck.Holds -> ()
   | o -> Alcotest.failf "gadget should hold, got %s" (outcome_repr o));
  Alcotest.(check int) "zero solver steps" 0 stat.Ck.stats.solver_steps;
  (* The explicit-state checker agrees with the statically discharged
     verdict at small parameters. *)
  List.iter
    (fun n ->
      match Explicit.check contradicted_ta reach_l3_spec [ ("n", n) ] with
      | Explicit.Holds -> ()
      | Explicit.Violated _ -> Alcotest.fail "explicit checker disagrees")
    [ 1; 2; 3; 4 ]

(* Static certificates flow through the emission sink and replay
   through the standalone checker, covering the whole transcript. *)
let test_static_certificate_emission () =
  let u = Holistic.Universe.build contradicted_ta in
  let path = Filename.temp_file "holistic_static_certs" ".jsonl" in
  let oc = open_out path in
  let sink = Holistic.Certs.create oc in
  let r =
    Ck.verify_with_universe ~limits:(limits ~incremental:true ()) ~certs:sink u
      reach_l3_spec
  in
  close_out oc;
  Alcotest.(check int) "no emission failures" 0 (Holistic.Certs.failed sink);
  let module J = Jsonc in
  let ic = open_in path in
  let statics = ref 0 and covered = ref 0 in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then begin
         let j = J.of_string line in
         let kind = J.to_str (J.member "kind" j) in
         let atoms =
           List.map Smt.Certificate.atom_of_json (J.to_list (J.member "atoms" j))
         in
         covered :=
           !covered
           + (if kind = "prefix" || kind = "static" then
                J.to_int (J.member "span" j)
              else 1);
         if kind = "static" then incr statics;
         match
           Smt.Certcheck.validate_query ~atoms ~branches:[]
             (Smt.Certificate.of_json (J.member "cert" j))
         with
         | Ok () -> ()
         | Error msg -> Alcotest.failf "certificate rejected: %s" msg
       end
     done
   with End_of_file -> close_in ic);
  Sys.remove path;
  Alcotest.(check bool) "static records emitted" true (!statics > 0);
  Alcotest.(check int) "certificates cover the transcript" r.Ck.stats.schemas_checked
    !covered

(* ------------------------------------------------------------------ *)
(* Slicing composes with checkpoint/resume; the fingerprint refuses a
   sliced/unsliced mismatch in both directions.                         *)

let with_temp_checkpoint f =
  let path = Filename.temp_file "holistic_absint_ckpt" ".journal" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let test_slice_checkpoint_refusal () =
  with_temp_checkpoint (fun path ->
      (* Checkpoint recorded for the sliced automaton... *)
      let r1 =
        Ck.verify ~limits:(limits ()) ~slice:true ~checkpoint:path contradicted_ta
          reach_l3_spec
      in
      (* ...resumes cleanly with the same slicing... *)
      let r2 =
        Ck.verify ~limits:(limits ()) ~slice:true ~checkpoint:path ~resume:true
          contradicted_ta reach_l3_spec
      in
      Alcotest.(check string) "sliced resume agrees" (outcome_repr r1.Ck.outcome)
        (outcome_repr r2.Ck.outcome);
      Alcotest.(check int) "sliced resume schemas" r1.Ck.stats.schemas_checked
        r2.Ck.stats.schemas_checked;
      (* ...and is refused without it. *)
      match
        Ck.verify ~limits:(limits ()) ~slice:false ~checkpoint:path ~resume:true
          contradicted_ta reach_l3_spec
      with
      | _ -> Alcotest.fail "unsliced resume of a sliced checkpoint must be refused"
      | exception Invalid_argument _ -> ());
  with_temp_checkpoint (fun path ->
      (* And the other direction: unsliced checkpoint, sliced resume. *)
      let _ =
        Ck.verify ~limits:(limits ()) ~slice:false ~checkpoint:path contradicted_ta
          reach_l3_spec
      in
      match
        Ck.verify ~limits:(limits ()) ~slice:true ~checkpoint:path ~resume:true
          contradicted_ta reach_l3_spec
      with
      | _ -> Alcotest.fail "sliced resume of an unsliced checkpoint must be refused"
      | exception Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* Random small DAG automata (the generator of test_incremental): the
   static discharge must preserve outcome, schema count and slot total
   on both sequential engines, never add solver steps, and compose
   with slicing + checkpoint/resume.                                    *)

let locations = [ "L0"; "L1"; "L2"; "L3" ]

let guard_pool =
  [
    G.tt;
    G.ge1 "x" (P.const 1);
    G.ge1 "x" (P.const 2);
    G.ge1 "y" (P.const 1);
    G.ge [ ("x", 1); ("y", 1) ] (P.const 2);
  ]

let update_pool = [ []; [ ("x", 1) ]; [ ("y", 1) ] ]

type rule_desc = { src : int; dst : int; guard : int; update : int; fair : bool }

let arb_ta =
  let open QCheck in
  let edges =
    List.concat_map
      (fun i -> List.filter_map (fun j -> if j > i then Some (i, j) else None) [ 0; 1; 2; 3 ])
      [ 0; 1; 2 ]
  in
  let arb_desc (src, dst) =
    map
      (fun (present, guard, update, fair) ->
        if present then Some { src; dst; guard; update; fair } else None)
      (tup4 bool
         (int_range 0 (List.length guard_pool - 1))
         (int_range 0 (List.length update_pool - 1))
         bool)
  in
  let rec sequence = function
    | [] -> Gen.return []
    | g :: gs -> Gen.map2 (fun x xs -> x :: xs) g (sequence gs)
  in
  let gens = List.map (fun e -> (arb_desc e).gen) edges in
  make
    ~print:(fun descs ->
      String.concat ";"
        (List.map
           (function
             | None -> "-"
             | Some d ->
               Printf.sprintf "%d->%d g%d u%d %s" d.src d.dst d.guard d.update
                 (if d.fair then "F" else "U"))
           descs))
    (sequence gens)

let build_ta descs =
  let rules =
    List.concat_map
      (function
        | None -> []
        | Some d ->
          [
            A.rule
              (Printf.sprintf "r%d%d" d.src d.dst)
              ~source:(List.nth locations d.src) ~target:(List.nth locations d.dst)
              ~guard:(List.nth guard_pool d.guard)
              ~update:(List.nth update_pool d.update)
              ~fairness:(if d.fair then A.Fair else A.Unfair);
          ])
      descs
  in
  A.make ~name:"random" ~params:[ "n" ] ~shared:[ "x"; "y" ] ~locations
    ~initial:[ "L0"; "L1" ]
    ~resilience:[ P.of_terms [ ("n", 1) ] (-1) ]
    ~population:(P.param "n") ~rules ()

let reach_spec =
  S.invariant ~name:"reach-L3" ~ltl:"<>(k[L3] != 0)"
    ~bad:[ ("L3 reached", C.some_nonempty [ "L3" ]) ]
    ()

let static_agrees descs =
  let ta = build_ta descs in
  let run ~incremental ~static =
    Ck.verify ~limits:(limits ~max_schemas:5_000 ~incremental ~static ()) ta reach_spec
  in
  List.for_all
    (fun incremental ->
      let plain = run ~incremental ~static:false in
      let stat = run ~incremental ~static:true in
      (match stat.Ck.outcome with
       | Ck.Aborted _ | Ck.Partial _ -> QCheck.assume_fail ()
       | _ -> ());
      outcome_repr plain.Ck.outcome = outcome_repr stat.Ck.outcome
      && plain.Ck.stats.schemas_checked = stat.Ck.stats.schemas_checked
      && plain.Ck.stats.slots_total = stat.Ck.stats.slots_total
      && stat.Ck.stats.solver_steps <= plain.Ck.stats.solver_steps
      && plain.Ck.stats.static_prunes = 0)
    [ false; true ]

let slice_checkpoint_composes descs =
  let ta = build_ta descs in
  with_temp_checkpoint (fun path ->
      let r1 =
        Ck.verify ~limits:(limits ~max_schemas:5_000 ()) ~slice:true ~checkpoint:path
          ta reach_spec
      in
      (match r1.Ck.outcome with
       | Ck.Aborted _ | Ck.Partial _ -> QCheck.assume_fail ()
       | _ -> ());
      let r2 =
        Ck.verify ~limits:(limits ~max_schemas:5_000 ()) ~slice:true ~checkpoint:path
          ~resume:true ta reach_spec
      in
      let agree =
        outcome_repr r1.Ck.outcome = outcome_repr r2.Ck.outcome
        && r1.Ck.stats.schemas_checked = r2.Ck.stats.schemas_checked
        && r1.Ck.stats.solver_steps = r2.Ck.stats.solver_steps
      in
      (* When slicing actually changed the automaton (under the same
         keep-list the checker uses), the fingerprint must refuse the
         unsliced resume. *)
      let sliced, _ = Analysis.slice ~keep:(Analysis.spec_locations reach_spec) ta in
      let changed = List.length sliced.A.rules <> List.length ta.A.rules
                    || List.length sliced.A.locations <> List.length ta.A.locations in
      let refused =
        (not changed)
        ||
        match
          Ck.verify ~limits:(limits ~max_schemas:5_000 ()) ~slice:false
            ~checkpoint:path ~resume:true ta reach_spec
        with
        | _ -> false
        | exception Invalid_argument _ -> true
      in
      agree && refused)

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"random DAGs: static = non-static on both engines"
         ~count:30 arb_ta static_agrees);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"random DAGs: slice composes with checkpoint/resume"
         ~count:30 arb_ta slice_checkpoint_composes);
  ]

let () =
  Alcotest.run "absint"
    [
      ( "fixpoint gadgets",
        [
          Alcotest.test_case "contradicted guard (TA017/TA020)" `Quick
            test_contradicted_guard;
          Alcotest.test_case "slice uses the fixpoint" `Quick test_slice_uses_absint;
          Alcotest.test_case "dominated atom (TA019)" `Quick test_dominated_atom;
          Alcotest.test_case "widening loop (TA024)" `Quick test_widening_loop;
          Alcotest.test_case "location invariant row" `Quick test_location_invariant;
          Alcotest.test_case "certified root refutation" `Quick test_invariants_root;
        ] );
      ( "static discharge",
        [
          Alcotest.test_case "bundled bv, all four engines" `Quick test_bundled_bv;
          Alcotest.test_case "gadget discharged at zero steps" `Quick
            test_gadget_static_discharge;
          Alcotest.test_case "static certificates emit and replay" `Quick
            test_static_certificate_emission;
        ] );
      ( "slicing and checkpoints",
        [
          Alcotest.test_case "fingerprint refusal both directions" `Quick
            test_slice_checkpoint_refusal;
        ] );
      ("random automata", qcheck_tests);
    ]
