(* Tests for the parameterized model checker: the guard universe, schema
   enumeration, encoding, and end-to-end verification — cross-validated
   against the explicit-state checker and against deliberately injected
   bugs.  The slowest paper properties (simplified-TA Inv1, SRound-Term)
   run in the benchmark harness instead; here we keep a representative,
   bounded subset. *)

module A = Ta.Automaton
module G = Ta.Guard
module C = Ta.Cond
module S = Ta.Spec
module P = Ta.Pexpr

let outcome_name = function
  | Holistic.Checker.Holds -> "holds"
  | Holistic.Checker.Violated _ -> "violated"
  | Holistic.Checker.Aborted _ -> "aborted"
  | Holistic.Checker.Partial _ -> "partial"

let check_outcome name expected result =
  Alcotest.(check string) name expected (outcome_name result.Holistic.Checker.outcome)

(* ------------------------------------------------------------------ *)
(* A toy automaton: A --t1(x++)--> B --t2[x >= k]--> C                  *)

let toy =
  A.make ~name:"toy" ~params:[ "n"; "k" ] ~shared:[ "x" ]
    ~locations:[ "A"; "B"; "C" ] ~initial:[ "A" ]
    ~resilience:[ P.of_terms [ ("n", 1) ] (-1); P.of_terms [ ("k", 1) ] (-1) ]
    ~population:(P.param "n")
    ~rules:
      [
        A.rule "t1" ~source:"A" ~target:"B" ~update:[ ("x", 1) ];
        A.rule "t2" ~source:"B" ~target:"C" ~guard:(G.ge1 "x" (P.param "k"));
      ]
    ()

let test_universe_toy () =
  let u = Holistic.Universe.build toy in
  Alcotest.(check int) "one guard" 1 (Holistic.Universe.size u);
  Alcotest.(check (list int)) "candidate at empty ctx" [ 0 ]
    (Holistic.Universe.unlock_candidates u 0);
  Alcotest.(check (list int)) "no candidate once unlocked" []
    (Holistic.Universe.unlock_candidates u 1);
  Alcotest.(check int) "rules enabled at empty ctx" 1
    (List.length (Holistic.Universe.enabled_rules u 0));
  Alcotest.(check int) "rules enabled at full ctx" 2
    (List.length (Holistic.Universe.enabled_rules u 1))

let test_universe_producibility () =
  (* A guard over a variable nothing increments can never unlock. *)
  let ta =
    A.make ~name:"stuck" ~params:[ "n" ] ~shared:[ "x"; "y" ]
      ~locations:[ "A"; "B" ] ~initial:[ "A" ]
      ~resilience:[ P.of_terms [ ("n", 1) ] (-1) ]
      ~population:(P.param "n")
      ~rules:[ A.rule "t" ~source:"A" ~target:"B" ~guard:(G.ge1 "y" (P.const 1)) ]
      ()
  in
  let u = Holistic.Universe.build ta in
  Alcotest.(check (list int)) "unproducible guard pruned" []
    (Holistic.Universe.unlock_candidates u 0)

let test_universe_precedence_bv () =
  let u = Holistic.Universe.build Models.Bv_ta.automaton in
  let find_atom pred =
    Option.get
      (List.find_opt (fun g -> pred (Holistic.Universe.atom u g)) (Holistic.Universe.ids u))
  in
  (* b0 >= t+1-f must unlock no later than b0 >= 2t+1-f. *)
  let weak =
    find_atom (fun (a : G.atom) -> a.shared = [ ("b0", 1) ] && a.bound.P.coeffs = [ ("t", 1); ("f", -1) ])
  in
  let strong =
    find_atom (fun (a : G.atom) -> a.shared = [ ("b0", 1) ] && a.bound.P.coeffs = [ ("t", 2); ("f", -1) ])
  in
  Alcotest.(check bool) "weak precedes strong" true
    (Holistic.Universe.must_precede u weak strong);
  Alcotest.(check bool) "strong does not precede weak" false
    (Holistic.Universe.must_precede u strong weak)

let test_universe_too_many_guards () =
  (* Contexts are bitmasks in a 63-bit int: a 63rd guard atom would shift
     into the sign bit, so [build] must refuse it loudly. *)
  let wide n =
    A.make ~name:"wide" ~params:[ "n" ] ~shared:[ "x" ] ~locations:[ "A"; "B" ]
      ~initial:[ "A" ]
      ~resilience:[ P.of_terms [ ("n", 1) ] (-1) ]
      ~population:(P.param "n")
      ~rules:
        (List.init n (fun i ->
             A.rule
               (Printf.sprintf "t%d" i)
               ~source:"A" ~target:"B"
               ~guard:(G.ge1 "x" (P.const (i + 1)))))
      ()
  in
  Alcotest.(check bool) "63 guard atoms rejected" true
    (try
       ignore (Holistic.Universe.build (wide 63));
       false
     with Invalid_argument msg ->
       Alcotest.(check bool) "message names the overflow" true
         (String.length msg > 0
         && Option.is_some
              (String.index_opt msg '6') (* mentions the 62-atom limit *));
       true)

let test_guard_ids_unknown_atom () =
  let u = Holistic.Universe.build toy in
  Alcotest.(check bool) "foreign atom rejected" true
    (try
       ignore (Holistic.Universe.guard_ids u (G.ge1 "x" (P.const 99)));
       false
     with Invalid_argument _ -> true)

let test_schema_count_toy () =
  let spec =
    S.invariant ~name:"reach-C" ~ltl:"<>(k[C] != 0)"
      ~bad:[ ("C reached", C.some_nonempty [ "C" ]) ]
      ()
  in
  let u = Holistic.Universe.build toy in
  (* The observation is cut-point-free, so schemas are the unlock chains:
     [] and [unlock x>=k]. *)
  match Holistic.Schema.count u spec ~limit:100 with
  | `Exactly n -> Alcotest.(check int) "two schemas" 2 n
  | `More_than _ -> Alcotest.fail "expected exact count"

let test_toy_reachability () =
  (* C is reachable (for every n, k there is a run filling it). *)
  let reach =
    S.invariant ~name:"reach-C" ~ltl:"<>(k[C] != 0)"
      ~bad:[ ("C reached", C.some_nonempty [ "C" ]) ]
      ()
  in
  let r = Holistic.Checker.verify toy reach in
  check_outcome "C reachable => spec violated" "violated" r;
  (match r.outcome with
   | Holistic.Checker.Violated w ->
     (* Replaying the witness at its own parameters must also violate the
        spec in the explicit-state checker. *)
     (match Explicit.check toy reach w.Holistic.Witness.params with
      | Explicit.Violated _ -> ()
      | Explicit.Holds -> Alcotest.fail "explicit checker disagrees with witness")
   | _ -> Alcotest.fail "expected witness");
  (* But C cannot hold more processes than n. *)
  let overfull =
    S.invariant ~name:"overfull" ~ltl:"<>(k[C] > n)"
      ~bad:
        [
          ( "more than n in C",
            [ { C.terms = [ (C.Counter "C", 1); (C.Param "n", -1) ]; const = -1; rel = C.Ge } ] );
        ]
      ()
  in
  check_outcome "pigeonhole" "holds" (Holistic.Checker.verify toy overfull)

let test_toy_liveness () =
  let term =
    S.liveness ~name:"toy-term" ~ltl:"<>(k[A] = 0 /\\ k[B] = 0)"
      ~target_violated:(C.some_nonempty [ "A"; "B" ])
      ()
  in
  (* With k possibly above n, processes can be stuck in B forever (x
     tops out at n < k): termination fails. *)
  check_outcome "toy termination fails when k may exceed n" "violated"
    (Holistic.Checker.verify toy term);
  let make_variant ~name ~fairness =
    A.make ~name ~params:[ "n"; "k" ] ~shared:[ "x" ] ~locations:[ "A"; "B"; "C" ]
      ~initial:[ "A" ]
      ~resilience:
        [
          P.of_terms [ ("n", 1) ] (-1);
          P.of_terms [ ("k", 1) ] (-1);
          (* n >= k: the threshold is always eventually reached. *)
          P.of_terms [ ("n", 1); ("k", -1) ] 0;
        ]
      ~population:(P.param "n")
      ~rules:
        [
          A.rule "t1" ~source:"A" ~target:"B" ~update:[ ("x", 1) ];
          A.rule "t2" ~source:"B" ~target:"C" ~guard:(G.ge1 "x" (P.param "k")) ~fairness;
        ]
      ()
  in
  (* With n >= k and fair rules, everyone eventually reaches C. *)
  check_outcome "toy termination holds when n >= k" "holds"
    (Holistic.Checker.verify (make_variant ~name:"toy_live" ~fairness:A.Fair) term);
  (* With an unfair rule t2, processes may be stuck in B forever even
     though the guard is true. *)
  check_outcome "unfair rule breaks liveness" "violated"
    (Holistic.Checker.verify (make_variant ~name:"toy_unfair" ~fairness:A.Unfair) term)

let test_precheck_rejections () =
  let cyclic =
    A.make ~name:"cyclic" ~params:[ "n" ] ~shared:[ "x" ] ~locations:[ "A"; "B" ]
      ~initial:[ "A" ]
      ~resilience:[ P.of_terms [ ("n", 1) ] (-1) ]
      ~population:(P.param "n")
      ~rules:
        [ A.rule "ab" ~source:"A" ~target:"B"; A.rule "ba" ~source:"B" ~target:"A" ]
      ()
  in
  let spec =
    S.invariant ~name:"x" ~ltl:"x" ~bad:[ ("b", C.some_nonempty [ "B" ]) ] ()
  in
  Alcotest.(check bool) "cyclic rejected" true
    (try
       ignore (Holistic.Checker.verify cyclic spec);
       false
     with Invalid_argument _ -> true);
  (* Liveness target that is not absorbing must be rejected: emptiness of
     B alone is not absorbing (A refills it). *)
  let bad_liveness =
    S.liveness ~name:"bad" ~ltl:"x" ~target_violated:(C.some_nonempty [ "B" ]) ()
  in
  Alcotest.(check bool) "non-absorbing target rejected" true
    (try
       ignore (Holistic.Checker.verify toy bad_liveness);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* The bv-broadcast automaton: full verification (fast).                *)

let bv_tests =
  let u = lazy (Holistic.Universe.build Models.Bv_ta.automaton) in
  List.map
    (fun spec ->
      Alcotest.test_case ("bv " ^ spec.S.name ^ " holds for all n > 3t") `Quick (fun () ->
          check_outcome spec.S.name "holds"
            (Holistic.Checker.verify_with_universe (Lazy.force u) spec)))
    Models.Bv_ta.all_specs

(* Injected bug: echo threshold weakened to b >= 1 - f, which lets
   correct processes echo a value no correct process broadcast (for
   f >= 1 the guard is trivially unlocked): BV-Justification breaks. *)
let bv_buggy =
  let weak = P.of_terms [ ("f", -1) ] 1 in
  A.make ~name:"bv_buggy" ~params:Models.Params.names ~shared:[ "b0"; "b1" ]
    ~locations:(Models.Bv_ta.locations) ~initial:[ "V0"; "V1" ]
    ~resilience:Models.Params.resilience ~population:Models.Params.population
    ~rules:
      (List.map
         (fun (r : A.rule) ->
           match r.name with
           | "r4" | "r5" ->
             let var = match r.update with [ (x, _) ] -> x | _ -> assert false in
             { r with guard = G.ge1 var weak }
           | _ -> r)
         Models.Bv_ta.automaton.A.rules)
    ()

let test_bv_injected_bug () =
  let spec = List.hd Models.Bv_ta.all_specs in
  (* BV-Just0 *)
  let r = Holistic.Checker.verify bv_buggy spec in
  check_outcome "justification violated" "violated" r;
  match r.outcome with
  | Holistic.Checker.Violated w ->
    (* Cross-check the counterexample parameters explicitly. *)
    (match Explicit.check bv_buggy spec w.Holistic.Witness.params with
     | Explicit.Violated _ -> ()
     | Explicit.Holds -> Alcotest.fail "explicit checker disagrees")
  | _ -> Alcotest.fail "expected witness"

(* ------------------------------------------------------------------ *)
(* Cross-validation of parameterized vs explicit results.               *)

let test_explicit_agrees_bv () =
  (* The parameterized checker says every bv spec holds; the explicit
     checker must agree on concrete parameters. *)
  List.iter
    (fun params ->
      List.iter
        (fun spec ->
          match Explicit.check Models.Bv_ta.automaton spec params with
          | Explicit.Holds -> ()
          | Explicit.Violated _ ->
            Alcotest.fail (Printf.sprintf "%s violated explicitly" spec.S.name))
        Models.Bv_ta.all_specs)
    [ [ ("n", 4); ("t", 1); ("f", 1) ]; [ ("n", 4); ("t", 1); ("f", 0) ];
      [ ("n", 5); ("t", 1); ("f", 1) ] ]

let test_explicit_agrees_simplified () =
  List.iter
    (fun spec ->
      match Explicit.check Models.Simplified_ta.automaton spec [ ("n", 4); ("t", 1); ("f", 1) ] with
      | Explicit.Holds -> ()
      | Explicit.Violated _ ->
        Alcotest.fail (Printf.sprintf "%s violated explicitly" spec.S.name))
    Models.Simplified_ta.all_specs

(* ------------------------------------------------------------------ *)
(* Simplified consensus: a bounded representative subset (the full Table
   2 reproduction lives in bench/).                                     *)

let test_simplified_inv2 () =
  check_outcome "Inv2_0" "holds"
    (Holistic.Checker.verify Models.Simplified_ta.automaton Models.Simplified_ta.inv2_0)

let test_simplified_good1 () =
  check_outcome "Good_1" "holds"
    (Holistic.Checker.verify Models.Simplified_ta.automaton Models.Simplified_ta.good_1)

(* Ablation: the justice constraints ARE the imported bv-broadcast
   properties; removing them (i.e. not trusting the inner verification)
   breaks the consensus liveness: processes may sit in the gadget's M
   location forever. *)
let test_justice_ablation () =
  let no_justice = { Models.Simplified_ta.automaton with A.justice = []; A.name = "simplified_no_justice" } in
  let r = Holistic.Checker.verify no_justice Models.Simplified_ta.sround_term in
  check_outcome "SRound-Term fails without justice" "violated" r

let test_broken_resilience_counterexample () =
  let r =
    Holistic.Checker.verify Models.Simplified_ta.automaton_broken_resilience
      Models.Simplified_ta.inv1_0
  in
  check_outcome "Inv1_0 under n > 2t" "violated" r;
  match r.outcome with
  | Holistic.Checker.Violated w ->
    let value p = List.assoc p w.Holistic.Witness.params in
    (* The counterexample must break the real resilience condition: it
       only exists because n <= 3t. *)
    Alcotest.(check bool) "witness has n <= 3t" true (value "n" <= 3 * value "t");
    (* And it must replay in the explicit checker. *)
    (match
       Explicit.check Models.Simplified_ta.automaton_broken_resilience
         Models.Simplified_ta.inv1_0 w.Holistic.Witness.params
     with
     | Explicit.Violated _ -> ()
     | Explicit.Holds -> Alcotest.fail "explicit checker disagrees with witness")
  | _ -> Alcotest.fail "expected witness"

(* The naive automaton's schema space explodes: this is the paper's
   central experimental contrast (Table 2: > 24h).  We only check that
   the enumeration blows past a large budget quickly. *)
let test_naive_schema_explosion () =
  (* The paper reports >100,000 schemas for the naive TA; our enumeration
     prunes more aggressively but the blow-up relative to the simplified
     TA (2,116 schemas) is still more than an order of magnitude, and the
     45-rule queries are far larger. *)
  let u = Holistic.Universe.build Models.Naive_ta.automaton in
  let u_simp = Holistic.Universe.build Models.Simplified_ta.automaton in
  let count u spec =
    match Holistic.Schema.count u spec ~limit:1_000_000 with
    | `More_than n | `Exactly n -> n
  in
  let naive = count u Models.Naive_ta.inv1_0 in
  let simplified = count u_simp Models.Simplified_ta.inv1_0 in
  Alcotest.(check bool)
    (Printf.sprintf "naive blow-up (%d vs %d)" naive simplified)
    true
    (naive > 10 * simplified)

let test_naive_verification_aborts () =
  let limits =
    { Holistic.Checker.default_limits with max_schemas = 500; time_budget = Some 10.0 }
  in
  check_outcome "naive TA aborts" "aborted"
    (Holistic.Checker.verify ~limits Models.Naive_ta.automaton Models.Naive_ta.inv1_0)

(* Beyond the paper's automata: one round of Ben-Or's randomized
   consensus (the classic target of this verification line), with
   coefficient-2 supermajority guards and conjunctive guards.  Safety
   holds on the sound monotone over-approximation; see
   lib/models/ben_or.ml. *)
let test_ben_or_agreement () =
  check_outcome "BenOr-Agree" "holds"
    (Holistic.Checker.verify Models.Ben_or.automaton Models.Ben_or.agreement)

let test_ben_or_explicit () =
  List.iter
    (fun spec ->
      List.iter
        (fun params ->
          match Explicit.check Models.Ben_or.automaton spec params with
          | Explicit.Holds -> ()
          | Explicit.Violated _ ->
            Alcotest.fail (spec.S.name ^ " violated explicitly"))
        [ [ ("n", 4); ("t", 1); ("f", 1) ]; [ ("n", 5); ("t", 1); ("f", 0) ] ])
    Models.Ben_or.all_specs

(* Edge cases: no rules at all, and conjunctive (multi-atom) guards,
   which the paper models do not exercise. *)
let test_no_rules () =
  let ta =
    A.make ~name:"frozen" ~params:[ "n" ] ~shared:[ "x" ] ~locations:[ "A"; "B" ]
      ~initial:[ "A" ]
      ~resilience:[ P.of_terms [ ("n", 1) ] (-1) ]
      ~population:(P.param "n") ~rules:[] ()
  in
  (* B is unreachable... *)
  check_outcome "unreachable B" "holds"
    (Holistic.Checker.verify ta
       (S.invariant ~name:"r" ~ltl:"<>(k[B] != 0)"
          ~bad:[ ("B", C.some_nonempty [ "B" ]) ]
          ()));
  (* ... and A never drains. *)
  check_outcome "A stuck" "violated"
    (Holistic.Checker.verify ta
       (S.liveness ~name:"d" ~ltl:"<>(k[A] = 0)" ~target_violated:(C.some_nonempty [ "A" ]) ()))

let test_conjunctive_guard () =
  (* D is reachable only after BOTH x >= 1 and y >= 1 hold; a process
     must pass through B (x++) and another through C (y++). *)
  let ta =
    A.make ~name:"conj" ~params:[ "n" ] ~shared:[ "x"; "y" ]
      ~locations:[ "A"; "B"; "C"; "D" ] ~initial:[ "A" ]
      ~resilience:[ P.of_terms [ ("n", 1) ] (-1) ]
      ~population:(P.param "n")
      ~rules:
        [
          A.rule "ab" ~source:"A" ~target:"B" ~update:[ ("x", 1) ];
          A.rule "ac" ~source:"A" ~target:"C" ~update:[ ("y", 1) ];
          A.rule "bd" ~source:"B" ~target:"D"
            ~guard:(G.ge1 "x" (P.const 1) @ G.ge1 "y" (P.const 1));
        ]
      ()
  in
  let reach =
    S.invariant ~name:"reach-D" ~ltl:"<>(k[D] != 0)"
      ~bad:[ ("D", C.some_nonempty [ "D" ]) ]
      ()
  in
  let r = Holistic.Checker.verify ta reach in
  check_outcome "D reachable" "violated" r;
  (match r.outcome with
   | Holistic.Checker.Violated w ->
     (* Needs at least two processes: one to raise y, one to reach D. *)
     Alcotest.(check bool) "needs n >= 2" true (List.assoc "n" w.Holistic.Witness.params >= 2);
     (match Explicit.check ta reach w.Holistic.Witness.params with
      | Explicit.Violated _ -> ()
      | Explicit.Holds -> Alcotest.fail "explicit disagrees")
   | _ -> Alcotest.fail "expected witness");
  (* With n = 1 fixed, D is unreachable: the lone process cannot be in
     both B and C. *)
  match Explicit.check ta reach [ ("n", 1) ] with
  | Explicit.Holds -> ()
  | Explicit.Violated _ -> Alcotest.fail "n=1 should not reach D"

(* Pruning ablation: disabling the enumeration pruning must not change
   verdicts, only enlarge the schema count (both prunings are sound
   reductions). *)
let test_pruning_ablation_sound () =
  let spec = List.hd Models.Bv_ta.all_specs in
  let with_pruning = Holistic.Universe.build Models.Bv_ta.automaton in
  let without =
    Holistic.Universe.build ~use_implication_order:false ~use_producibility:false
      Models.Bv_ta.automaton
  in
  let r1 = Holistic.Checker.verify_with_universe with_pruning spec in
  let r2 = Holistic.Checker.verify_with_universe without spec in
  Alcotest.(check string) "same verdict" (outcome_name r1.Holistic.Checker.outcome)
    (outcome_name r2.Holistic.Checker.outcome);
  Alcotest.(check bool) "pruning shrinks the enumeration" true
    (r1.stats.schemas_checked < r2.stats.schemas_checked)

(* ------------------------------------------------------------------ *)
(* Multi-round validation (Appendix A): the parameterized checker works
   on the one-round system and derives Agreement/Validity across rounds;
   the unrolled multi-round explorer must agree at small parameters.     *)

let test_multiround_agreement_validity () =
  let ta = Models.Simplified_ta.automaton in
  List.iter
    (fun params ->
      (match Explicit.Multiround.agreement ta ~decide0:"D0" ~decide1:"D1" ~rounds:2 params with
       | Explicit.Multiround.Holds -> ()
       | Explicit.Multiround.Violated _ -> Alcotest.fail "agreement violated");
      match
        Explicit.Multiround.validity ta ~forbidden_initial:"V0" ~decide:"D0" ~rounds:2 params
      with
      | Explicit.Multiround.Holds -> ()
      | Explicit.Multiround.Violated _ -> Alcotest.fail "validity violated")
    [ [ ("n", 2); ("t", 0); ("f", 0) ]; [ ("n", 3); ("t", 0); ("f", 0) ] ]

let test_multiround_broken_agreement () =
  match
    Explicit.Multiround.agreement Models.Simplified_ta.automaton_broken_resilience
      ~decide0:"D0" ~decide1:"D1" ~rounds:2
      [ ("n", 3); ("t", 1); ("f", 1) ]
  with
  | Explicit.Multiround.Violated _ -> ()
  | Explicit.Multiround.Holds ->
    Alcotest.fail "agreement should break across rounds when n <= 3t"

let () =
  Alcotest.run "holistic"
    [
      ( "universe",
        [
          Alcotest.test_case "toy universe" `Quick test_universe_toy;
          Alcotest.test_case "producibility pruning" `Quick test_universe_producibility;
          Alcotest.test_case "bv threshold precedence" `Quick test_universe_precedence_bv;
          Alcotest.test_case "guard-atom bitmask overflow rejected" `Quick
            test_universe_too_many_guards;
          Alcotest.test_case "guard_ids rejects foreign atoms" `Quick
            test_guard_ids_unknown_atom;
        ] );
      ( "schema",
        [
          Alcotest.test_case "toy schema count" `Quick test_schema_count_toy;
          Alcotest.test_case "naive TA explosion" `Quick test_naive_schema_explosion;
        ] );
      ( "checker-toy",
        [
          Alcotest.test_case "reachability + witness replay" `Quick test_toy_reachability;
          Alcotest.test_case "liveness and fairness" `Quick test_toy_liveness;
          Alcotest.test_case "precondition rejections" `Quick test_precheck_rejections;
        ] );
      ("checker-bv", bv_tests);
      ( "bug-injection",
        [
          Alcotest.test_case "weakened echo threshold breaks justification" `Quick
            test_bv_injected_bug;
        ] );
      ( "cross-validation",
        [
          Alcotest.test_case "explicit agrees on bv" `Quick test_explicit_agrees_bv;
          Alcotest.test_case "explicit agrees on simplified" `Quick
            test_explicit_agrees_simplified;
        ] );
      ( "ben-or",
        [
          Alcotest.test_case "agreement for all parameters" `Slow test_ben_or_agreement;
          Alcotest.test_case "explicit cross-check" `Quick test_ben_or_explicit;
        ] );
      ( "edge-cases",
        [
          Alcotest.test_case "automaton without rules" `Quick test_no_rules;
          Alcotest.test_case "conjunctive guards" `Quick test_conjunctive_guard;
        ] );
      ( "ablation",
        [
          Alcotest.test_case "pruning is sound (verdicts unchanged)" `Quick
            test_pruning_ablation_sound;
        ] );
      ( "multiround",
        [
          Alcotest.test_case "agreement/validity across superrounds" `Slow
            test_multiround_agreement_validity;
          Alcotest.test_case "agreement breaks across rounds when n <= 3t" `Quick
            test_multiround_broken_agreement;
        ] );
      ( "checker-simplified",
        [
          Alcotest.test_case "Inv2_0 holds" `Slow test_simplified_inv2;
          Alcotest.test_case "Good_1 holds" `Slow test_simplified_good1;
          Alcotest.test_case "justice ablation breaks liveness" `Slow
            test_justice_ablation;
          Alcotest.test_case "broken resilience counterexample" `Slow
            test_broken_resilience_counterexample;
          Alcotest.test_case "naive TA aborts under budget" `Slow
            test_naive_verification_aborts;
        ] );
    ]
