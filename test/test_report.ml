(* Tests for the Table 2 report generation: row construction from checker
   results and the text/markdown/CSV renderers.  (The full table runs in
   bench/main.exe; here we use the fast bv-broadcast rows once and
   synthetic results.) *)

let fake_result outcome : Holistic.Checker.result =
  {
    spec =
      Ta.Spec.invariant ~name:"Fake" ~ltl:"[](true)"
        ~bad:[ ("x", Ta.Cond.some_nonempty [ "V0" ]) ]
        ();
    outcome;
    stats =
      {
        schemas_checked = 10;
        schemas_skipped = 0;
        subtrees_pruned = 0;
        core_prunes = 0;
        static_prunes = 0;
        prefix_hits = 0;
        slots_total = 120;
        solver_steps = 0;
        encode_time = 0.5;
        solve_time = 0.75;
        time = 1.25;
        jobs = 1;
        workers = [];
        cache = Smt.Portfolio.zero_counters;
      };
  }

let test_row_of_result () =
  let row =
    Report.row_of_result ~ta_label:"ta" ~size:"1g/2loc/3rules" ~paper:"9.99s"
      (fake_result Holistic.Checker.Holds)
  in
  Alcotest.(check string) "schemas" "10" row.Report.schemas;
  Alcotest.(check string) "avg" "12" row.Report.avg_len;
  Alcotest.(check string) "time" "1.25s" row.Report.time;
  Alcotest.(check string) "verdict" "holds" row.Report.verdict;
  let aborted =
    Report.row_of_result ~ta_label:"ta" ~size:"s" ~paper:">24h"
      (fake_result (Holistic.Checker.Aborted "budget"))
  in
  Alcotest.(check string) "aborted schemas" ">10" aborted.Report.schemas;
  Alcotest.(check string) "aborted verdict" "aborted" aborted.Report.verdict

let test_renderers () =
  let rows =
    [
      Report.row_of_result ~ta_label:"ta" ~size:"4g/10loc/19rules" ~paper:"5.61s"
        (fake_result Holistic.Checker.Holds);
    ]
  in
  let md = Report.to_markdown rows in
  Alcotest.(check bool) "markdown header" true (String.length md > 0 && md.[0] = '|');
  Alcotest.(check int) "markdown lines" 3
    (List.length (String.split_on_char '\n' (String.trim md)));
  let csv = Report.to_csv rows in
  Alcotest.(check int) "csv lines" 2 (List.length (String.split_on_char '\n' (String.trim csv)));
  Alcotest.(check bool) "csv has verdict" true
    (List.exists (fun line -> List.mem "holds" (String.split_on_char ',' line))
       (String.split_on_char '\n' csv))

let test_bv_rows_live () =
  let rows = Report.bv_rows () in
  Alcotest.(check int) "four rows" 4 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check string) ("verdict " ^ r.Report.property) "holds" r.Report.verdict;
      Alcotest.(check string) ("size " ^ r.Report.property) "4g/10loc/19rules" r.Report.size)
    rows

let test_size_string () =
  Alcotest.(check string) "bv size" "4g/10loc/19rules"
    (Report.size_string Models.Bv_ta.automaton);
  Alcotest.(check string) "naive size" "14g/26loc/45rules"
    (Report.size_string Models.Naive_ta.automaton)

let () =
  Alcotest.run "report"
    [
      ( "rows",
        [
          Alcotest.test_case "row construction" `Quick test_row_of_result;
          Alcotest.test_case "renderers" `Quick test_renderers;
          Alcotest.test_case "live bv rows" `Quick test_bv_rows_live;
          Alcotest.test_case "size strings" `Quick test_size_string;
        ] );
    ]
