(* Empirical validation of the binary-value broadcast (Fig. 1) at the
   simulation level: the standalone {!Dbft.Bv} endpoint (no consensus on
   top) run over the simulated network against Byzantine senders, checked
   against the four properties of Section 3.2 on every seeded run — the
   scenarios are expressed as {!Fuzz.Trace} scenarios and the properties
   as the fuzzer's executable oracles.

   This complements the parameterized proofs of test_holistic.ml: the
   same properties, on the executable pseudocode rather than on the
   threshold automaton. *)

let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let scenario ?(byzantine = []) ~n ~t ~inputs ~seed () =
  {
    Fuzz.Trace.kind = Fuzz.Trace.Bv_broadcast;
    n;
    t;
    inputs;
    byzantine;
    sched_seed = seed;
    drop_rate = 0;
    dup_rate = 0;
    max_delay = 0;
    partition = None;
    max_round = 0;
    max_steps = 50_000;
  }

let verdicts s = Fuzz.Oracle.check s (Fuzz.Exec.run s)

let check_all_pass s =
  List.iter
    (fun (name, v) ->
      match v with
      | Fuzz.Oracle.Pass -> ()
      | Fuzz.Oracle.Fail why -> Alcotest.failf "%s failed: %s" name why
      | Fuzz.Oracle.Skip why -> Alcotest.failf "%s skipped (%s): run should be fair" name why)
    (verdicts s)

let test_unanimous () =
  check_all_pass
    (scenario ~n:4 ~t:1 ~inputs:[ 1; 1; 1 ]
       ~byzantine:[ (3, Fuzz.Trace.Equivocate) ]
       ~seed:1 ())

let test_justification_blocks_byzantine_value () =
  (* All correct propose 1; the Byzantine pushes 0 to half the network:
     0 must never be delivered (it can gather at most t senders). *)
  let s =
    scenario ~n:4 ~t:1 ~inputs:[ 1; 1; 1 ]
      ~byzantine:[ (3, Fuzz.Trace.Equivocate) ]
      ~seed:2 ()
  in
  let o = Fuzz.Exec.run s in
  List.iter
    (fun (p : Fuzz.Exec.proc_result) ->
      Alcotest.(check bool)
        (Printf.sprintf "p%d did not deliver 0" p.pid)
        false (List.mem 0 p.contestants))
    o.procs

let all_hold s =
  List.for_all
    (fun (_, v) -> match v with Fuzz.Oracle.Fail _ -> false | _ -> true)
    (verdicts s)

let bv_sim_props =
  [
    prop "four bv properties hold on every seeded run" 200
      QCheck.(pair (int_range 0 7) (int_bound 9999))
      (fun (bits, seed) ->
        let inputs = [ bits land 1; (bits lsr 1) land 1; (bits lsr 2) land 1 ] in
        all_hold
          (scenario ~n:4 ~t:1 ~inputs ~byzantine:[ (3, Fuzz.Trace.Equivocate) ] ~seed ()));
    prop "properties hold with no byzantine process" 100
      QCheck.(pair (int_range 0 15) (int_bound 9999))
      (fun (bits, seed) ->
        let inputs = List.init 4 (fun i -> (bits lsr i) land 1) in
        all_hold (scenario ~n:4 ~t:1 ~inputs ~seed ()));
  ]

let () =
  Alcotest.run "bv-sim"
    [
      ( "scenarios",
        [
          Alcotest.test_case "unanimous with byzantine" `Quick test_unanimous;
          Alcotest.test_case "justification blocks byzantine value" `Quick
            test_justification_blocks_byzantine_value;
        ] );
      ("properties", bv_sim_props);
    ]
