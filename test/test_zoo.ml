(* The model-zoo battery (Models.Zoo): every registered entry must lint
   clean, verify to its expected verdict on all four engines
   (flat/incremental x sequential/parallel) with identical witnesses,
   schema counts and slot totals, behave identically with the discharge
   cache on and off, and every seeded mutant must be caught — by a
   lint error of the declared code or by a counterexample witness on
   the declared spec.  Registering a model in the zoo without this
   battery passing is impossible. *)

module A = Ta.Automaton
module S = Ta.Spec
module Z = Models.Zoo
module Ck = Holistic.Checker
module An = Analysis

let limits ?(jobs = 1) ?(incremental = true) () =
  { Ck.default_limits with Ck.max_schemas = 100_000; jobs; incremental }

let outcome_repr = function
  | Ck.Holds -> "holds"
  | Ck.Violated w -> Format.asprintf "violated@\n%a" Holistic.Witness.pp w
  | Ck.Aborted reason -> "aborted: " ^ reason
  | Ck.Partial { quarantined; reason } ->
    Format.asprintf "partial (%d quarantined): %s" (List.length quarantined) reason

let codes ds = List.sort_uniq compare (List.map (fun (d : An.diagnostic) -> d.code) ds)

(* ------------------------------------------------------------------ *)
(* Registry sanity: the battery's own preconditions.                    *)

let test_registry () =
  Alcotest.(check bool) "at least 6 entries" true (List.length Z.entries >= 6);
  let keys = Z.keys in
  Alcotest.(check int) "keys distinct" (List.length keys)
    (List.length (List.sort_uniq compare keys));
  List.iter
    (fun k ->
      Alcotest.(check bool) ("new model " ^ k ^ " registered") true
        (Z.find k <> None))
    [ "bracha"; "phase-king"; "strb"; "frb"; "benor"; "dbft-rta" ];
  Alcotest.(check bool) "at least 4 mutants" true (List.length Z.all_mutants >= 4);
  Alcotest.(check bool) "a fuzzable entry exists" true
    (List.exists (fun (e : Z.entry) -> e.Z.fuzzable) Z.entries);
  List.iter
    (fun (e : Z.entry) ->
      Alcotest.(check bool)
        (e.Z.key ^ " has specs") true (e.Z.specs <> []))
    Z.entries

(* ------------------------------------------------------------------ *)
(* Lint: every entry is accepted (no error-level diagnostic), exit code
   0 for `holistic lint`.                                               *)

let test_lint_clean () =
  List.iter
    (fun (e : Z.entry) ->
      let diags =
        An.run ~assume:e.Z.justice_assumption ~specs:(List.map fst e.Z.specs)
          e.Z.automaton
      in
      Alcotest.(check (list string))
        (e.Z.key ^ " lint errors") []
        (codes (An.errors diags)))
    Z.entries

(* ------------------------------------------------------------------ *)
(* Verdicts: expected outcome on the sequential reference engine, and
   bit-identical outcome/witness/schema-count/slot-total on the other
   three engines.                                                       *)

let test_four_engines () =
  List.iter
    (fun (e : Z.entry) ->
      let u = Holistic.Universe.build e.Z.automaton in
      List.iter
        (fun ((spec : S.t), expected) ->
          let reference = Ck.verify_with_universe ~limits:(limits ()) u spec in
          let label = e.Z.key ^ "/" ^ spec.S.name in
          (match (expected, reference.Ck.outcome) with
          | Z.Holds, Ck.Holds -> ()
          | Z.Violated, Ck.Violated w ->
            Alcotest.(check bool)
              (label ^ " witness has steps")
              true (w.Holistic.Witness.steps <> [])
          | _, got ->
            Alcotest.failf "%s: expected %s, got %s" label
              (Z.verdict_to_string expected) (outcome_repr got));
          List.iter
            (fun (incremental, jobs) ->
              let r =
                Ck.verify_with_universe ~limits:(limits ~jobs ~incremental ()) u spec
              in
              let elabel = Printf.sprintf "%s inc=%b jobs=%d" label incremental jobs in
              Alcotest.(check string)
                (elabel ^ " outcome")
                (outcome_repr reference.Ck.outcome)
                (outcome_repr r.Ck.outcome);
              Alcotest.(check int)
                (elabel ^ " schemas") reference.Ck.stats.Ck.schemas_checked
                r.Ck.stats.Ck.schemas_checked;
              Alcotest.(check int)
                (elabel ^ " slots") reference.Ck.stats.Ck.slots_total
                r.Ck.stats.Ck.slots_total)
            [ (false, 2); (true, 1); (true, 2) ])
        e.Z.specs)
    Z.entries

(* ------------------------------------------------------------------ *)
(* Discharge cache on vs off: same verdicts, witnesses, schema counts.  *)

let test_cache_on_off () =
  let portfolio = Smt.Portfolio.create ~check:true (Smt.Qcache.create ()) in
  List.iter
    (fun (e : Z.entry) ->
      let u = Holistic.Universe.build e.Z.automaton in
      List.iter
        (fun ((spec : S.t), _) ->
          let label = e.Z.key ^ "/" ^ spec.S.name in
          let plain = Ck.verify_with_universe ~limits:(limits ()) u spec in
          let cached =
            Ck.verify_with_universe ~limits:(limits ()) ~portfolio u spec
          in
          Alcotest.(check string)
            (label ^ " cached outcome")
            (outcome_repr plain.Ck.outcome)
            (outcome_repr cached.Ck.outcome);
          Alcotest.(check int)
            (label ^ " cached schemas") plain.Ck.stats.Ck.schemas_checked
            cached.Ck.stats.Ck.schemas_checked)
        e.Z.specs)
    Z.entries

(* ------------------------------------------------------------------ *)
(* Mutants: each one is caught the way its registry entry declares.     *)

let test_mutants_caught () =
  List.iter
    (fun ((e : Z.entry), (m : Z.mutant)) ->
      match m.Z.rejection with
      | Z.Lint code ->
        let diags = An.run ~specs:(List.map fst e.Z.specs) m.Z.mutant_automaton in
        let errs = An.errors diags in
        Alcotest.(check bool)
          (m.Z.mutant_key ^ " rejected by lint " ^ code)
          true
          (List.exists (fun (d : An.diagnostic) -> d.An.code = code) errs)
      | Z.Checker spec ->
        let r = Ck.verify ~limits:(limits ()) m.Z.mutant_automaton spec in
        (match r.Ck.outcome with
        | Ck.Violated w ->
          Alcotest.(check bool)
            (m.Z.mutant_key ^ " witness has steps")
            true (w.Holistic.Witness.steps <> [])
        | got ->
          Alcotest.failf "%s: expected a counterexample witness, got %s"
            m.Z.mutant_key (outcome_repr got))
      | Z.Fuzz { spec; n; t; f; value; sched_seed } ->
        (* The divergence pair: the checker must be blind (the mutant
           automaton dropped the adversary, so the spec holds on it)... *)
        let r = Ck.verify ~limits:(limits ()) m.Z.mutant_automaton spec in
        Alcotest.(check string)
          (m.Z.mutant_key ^ " is checker-invisible (" ^ spec.S.name ^ " holds)")
          "holds" (outcome_repr r.Ck.outcome);
        (* ...while the simulated network at the declared concrete
           parameters exhibits a real violating run. *)
        (match Fuzz.Crossval.realize ~n ~t ~f ~value ~sched_seed with
        | Some trace ->
          Alcotest.(check bool)
            (m.Z.mutant_key ^ " fuzz counterexample has events")
            true
            (trace.Fuzz.Trace.events <> [])
        | None ->
          Alcotest.failf "%s: fuzz oracle found no violation at n=%d t=%d f=%d"
            m.Z.mutant_key n t f))
    Z.all_mutants

(* The healthy parents are not caught: the mutated spec holds on the
   original automaton, so the mutants fail for the seeded reason, not
   because the property was unverifiable to begin with. *)
let test_mutant_parents_healthy () =
  List.iter
    (fun ((e : Z.entry), (m : Z.mutant)) ->
      match m.Z.rejection with
      | Z.Lint code ->
        let diags = An.run ~assume:e.Z.justice_assumption e.Z.automaton in
        Alcotest.(check bool)
          (e.Z.key ^ " parent free of " ^ code)
          true
          (not (List.exists (fun (d : An.diagnostic) -> d.An.code = code) diags))
      | Z.Checker spec ->
        let r = Ck.verify ~limits:(limits ()) e.Z.automaton spec in
        Alcotest.(check string)
          (e.Z.key ^ " parent satisfies " ^ spec.S.name)
          "holds" (outcome_repr r.Ck.outcome)
      | Z.Fuzz { spec; _ } ->
        (* The sound model (with the -f discount, under f <= t) proves
           the same property: the blind spot is the seeded edit, not a
           property that was unverifiable to begin with. *)
        let r = Ck.verify ~limits:(limits ()) Models.Bv_ta.automaton spec in
        Alcotest.(check string)
          ("bv parent satisfies " ^ spec.S.name)
          "holds" (outcome_repr r.Ck.outcome))
    Z.all_mutants

(* ------------------------------------------------------------------ *)
(* Fuzz cross-validation for entries with a simnet executable model.    *)

let test_fuzzable_entries () =
  List.iter
    (fun (e : Z.entry) ->
      if e.Z.fuzzable then begin
        let r =
          Fuzz.Campaign.campaign ~seed:42 ~runs:15 ~profile:Fuzz.Campaign.Conforming ()
        in
        Alcotest.(check int)
          (e.Z.key ^ " conforming fuzz violations") 0
          (List.length r.Fuzz.Campaign.violations);
        Alcotest.(check (list string))
          (e.Z.key ^ " fuzz divergences") []
          (List.map
             (fun (i, _) -> string_of_int i)
             r.Fuzz.Campaign.divergences)
      end)
    Z.entries

let () =
  Alcotest.run "zoo"
    [
      ("registry", [ Alcotest.test_case "sanity" `Quick test_registry ]);
      ("lint", [ Alcotest.test_case "all entries clean" `Quick test_lint_clean ]);
      ( "verify",
        [
          Alcotest.test_case "expected verdicts, four engines" `Quick
            test_four_engines;
          Alcotest.test_case "cache on vs off" `Quick test_cache_on_off;
        ] );
      ( "mutants",
        [
          Alcotest.test_case "each mutant caught" `Quick test_mutants_caught;
          Alcotest.test_case "parents healthy" `Quick test_mutant_parents_healthy;
        ] );
      ("fuzz", [ Alcotest.test_case "fuzzable entries" `Quick test_fuzzable_entries ]);
    ]
