(* Cross-validation of the multicore schema-verification engine against
   the sequential reference engine.

   The parallel checker (Checker with limits.jobs > 1, built on
   lib/core/pool.ml) promises bit-identical outcomes, witness traces,
   schema counts, slot totals and solver-step totals for any number of
   worker domains.  This suite pins that contract on:

   - the Pool primitive itself, with synthetic job streams;
   - every bv-broadcast spec and every simplified-consensus spec of the
     paper (the Table 2 properties run to completion; the remaining
     symmetric variants run under a schema budget to also pin the
     deterministic abort path);
   - the naive-consensus abort rows and the broken-resilience
     counterexample (witness equality included);
   - a qcheck property over randomly generated small DAG automata. *)

module A = Ta.Automaton
module G = Ta.Guard
module P = Ta.Pexpr
module C = Ta.Cond
module S = Ta.Spec
module Ck = Holistic.Checker

(* ------------------------------------------------------------------ *)
(* The Pool primitive.                                                  *)

let int_stream n ~push =
  let rec go i = if i >= n then true else if push i then go (i + 1) else false in
  go 0

let test_pool_all_pass () =
  let c =
    Holistic.Pool.run ~jobs:4 ~produce:(int_stream 100)
      ~work:(fun ~worker:_ _i item -> item * 2)
      ~is_stop:(fun _ -> false)
      ()
  in
  Alcotest.(check bool) "completed" true c.Holistic.Pool.completed;
  Alcotest.(check (option int)) "no stop" None c.Holistic.Pool.first_stop;
  let indices = List.map (fun (i, _, _) -> i) c.Holistic.Pool.results in
  Alcotest.(check (list int)) "every job ran once" (List.init 100 Fun.id)
    (List.sort compare indices);
  List.iter
    (fun (i, _, r) -> Alcotest.(check int) "result" (2 * i) r)
    c.Holistic.Pool.results

let test_pool_first_stop_deterministic () =
  (* Items 37, 11 mod 50... every item >= 37 stops; the pool must report
     37 — the sequential stop — no matter how workers interleave. *)
  List.iter
    (fun jobs ->
      let c =
        Holistic.Pool.run ~jobs ~capacity:4 ~produce:(int_stream 500)
          ~work:(fun ~worker:_ _i item -> item)
          ~is_stop:(fun r -> r >= 37)
          ()
      in
      Alcotest.(check (option int))
        (Printf.sprintf "first stop at jobs=%d" jobs)
        (Some 37) c.Holistic.Pool.first_stop;
      Alcotest.(check bool) "producer cut off" false c.Holistic.Pool.completed;
      (* Everything before the stop must have run. *)
      let ran = List.map (fun (i, _, _) -> i) c.Holistic.Pool.results in
      List.iter
        (fun i -> Alcotest.(check bool) (Printf.sprintf "job %d ran" i) true (List.mem i ran))
        (List.init 38 Fun.id))
    [ 1; 2; 4; 8 ]

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* Fail-soft: a job that crashes on both attempts is quarantined — the
   run completes and every other job's result is present. *)
let test_pool_worker_exception () =
  let c =
    Holistic.Pool.run ~jobs:3 ~produce:(int_stream 50)
      ~work:(fun ~worker:_ _i item -> if item = 5 then failwith "boom" else item)
      ~is_stop:(fun _ -> false)
      ()
  in
  Alcotest.(check bool) "run completes despite the crash" true c.Holistic.Pool.completed;
  Alcotest.(check (option int)) "no stop" None c.Holistic.Pool.first_stop;
  (match c.Holistic.Pool.quarantined with
   | [ (5, msg) ] ->
     Alcotest.(check bool)
       (Printf.sprintf "quarantine message mentions the exception (%s)" msg)
       true (contains ~sub:"boom" msg)
   | q ->
     Alcotest.failf "expected exactly job 5 quarantined, got [%s]"
       (String.concat "; " (List.map (fun (i, m) -> Printf.sprintf "(%d, %s)" i m) q)));
  let indices = List.map (fun (i, _, _) -> i) c.Holistic.Pool.results in
  Alcotest.(check (list int))
    "every other job ran once"
    (List.filter (fun i -> i <> 5) (List.init 50 Fun.id))
    (List.sort compare indices)

(* A transient crash (first attempt only) is retried once and does not
   quarantine: the completion is indistinguishable from a clean run. *)
let test_pool_worker_retry () =
  let tripped = Atomic.make false in
  let c =
    Holistic.Pool.run ~jobs:3 ~produce:(int_stream 50)
      ~work:(fun ~worker:_ _i item ->
        if item = 5 && not (Atomic.exchange tripped true) then failwith "flaky";
        item)
      ~is_stop:(fun _ -> false)
      ()
  in
  Alcotest.(check bool) "the crash really happened" true (Atomic.get tripped);
  Alcotest.(check bool) "run completes" true c.Holistic.Pool.completed;
  Alcotest.(check (list (pair int string))) "nothing quarantined" []
    c.Holistic.Pool.quarantined;
  let indices = List.map (fun (i, _, _) -> i) c.Holistic.Pool.results in
  Alcotest.(check (list int)) "every job ran once" (List.init 50 Fun.id)
    (List.sort compare indices)

let test_pool_bad_jobs () =
  Alcotest.(check bool) "jobs=0 rejected" true
    (try
       ignore
         (Holistic.Pool.run ~jobs:0
            ~produce:(int_stream 1)
            ~work:(fun ~worker:_ _i item -> item)
            ~is_stop:(fun _ -> false)
            ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Engine-vs-engine comparison helpers.

   This suite pins the FLAT parallel engine to the flat sequential one
   (solver-step totals included).  The incremental engines are pinned
   separately in test_incremental.ml: their step totals legitimately
   differ between jobs=1 and jobs>1 (per-worker solver sessions), so
   the step-identity assertion below only holds with incremental off. *)

let limits ?(max_schemas = 100_000) jobs =
  { Ck.default_limits with jobs; max_schemas; incremental = false }

let outcome_repr = function
  | Ck.Holds -> "holds"
  | Ck.Violated w -> Format.asprintf "violated@\n%a" Holistic.Witness.pp w
  | Ck.Aborted reason -> "aborted: " ^ reason
  | Ck.Partial { quarantined; reason } ->
    Format.asprintf "partial (%d quarantined): %s" (List.length quarantined) reason

(* Identical outcome (witness trace included), schema count, slot total
   and solver-step total between jobs=1 and jobs=[par_jobs]. *)
let check_identical ?max_schemas ?(par_jobs = 4) name u spec =
  let seq = Ck.verify_with_universe ~limits:(limits ?max_schemas 1) u spec in
  let par = Ck.verify_with_universe ~limits:(limits ?max_schemas par_jobs) u spec in
  Alcotest.(check string)
    (name ^ ": outcome/witness")
    (outcome_repr seq.Ck.outcome) (outcome_repr par.Ck.outcome);
  Alcotest.(check int) (name ^ ": schemas") seq.Ck.stats.schemas_checked
    par.Ck.stats.schemas_checked;
  Alcotest.(check int) (name ^ ": slots") seq.Ck.stats.slots_total par.Ck.stats.slots_total;
  Alcotest.(check int)
    (name ^ ": solver steps")
    seq.Ck.stats.solver_steps par.Ck.stats.solver_steps;
  Alcotest.(check int) (name ^ ": jobs recorded") par_jobs par.Ck.stats.jobs;
  (* When nothing stops the run early, no work is discarded, so the
     per-worker split must add up exactly to the totals. *)
  (match par.Ck.outcome with
   | Ck.Holds ->
     let sum f = List.fold_left (fun acc w -> acc + f w) 0 par.Ck.stats.workers in
     Alcotest.(check int)
       (name ^ ": worker schemas add up")
       par.Ck.stats.schemas_checked
       (sum (fun w -> w.Ck.schemas));
     Alcotest.(check int)
       (name ^ ": worker slots add up")
       par.Ck.stats.slots_total
       (sum (fun w -> w.Ck.slots))
   | _ -> ())

(* ------------------------------------------------------------------ *)
(* The paper's automata.                                                *)

let bv_tests =
  let u = lazy (Holistic.Universe.build Models.Bv_ta.automaton) in
  List.map
    (fun spec ->
      Alcotest.test_case ("bv " ^ spec.S.name) `Quick (fun () ->
          check_identical ("bv " ^ spec.S.name) (Lazy.force u) spec))
    Models.Bv_ta.all_specs

let simplified_u = lazy (Holistic.Universe.build Models.Simplified_ta.automaton)

(* The five Table 2 properties run to completion in both engines. *)
let simplified_full_tests =
  List.map
    (fun spec ->
      Alcotest.test_case ("simplified " ^ spec.S.name) `Slow (fun () ->
          check_identical ("simplified " ^ spec.S.name) (Lazy.force simplified_u) spec))
    Models.Simplified_ta.table2_specs

(* The symmetric _1 variants pin the deterministic schema-budget abort
   instead (identical abort reason, count and slots), keeping the suite
   affordable: a full run costs ~15 s per property per engine. *)
let simplified_budgeted_tests =
  let in_table2 (s : S.t) =
    List.exists (fun (t : S.t) -> t.name = s.name) Models.Simplified_ta.table2_specs
  in
  List.filter_map
    (fun (spec : S.t) ->
      if in_table2 spec then None
      else
        Some
          (Alcotest.test_case ("simplified " ^ spec.name ^ " (budgeted)") `Slow (fun () ->
               check_identical ~max_schemas:150
                 ("simplified " ^ spec.name)
                 (Lazy.force simplified_u) spec)))
    Models.Simplified_ta.all_specs

let test_naive_budget_abort () =
  let u = Holistic.Universe.build Models.Naive_ta.automaton in
  List.iter
    (fun (spec : S.t) ->
      check_identical ~max_schemas:200 ("naive " ^ spec.name) u spec)
    Models.Naive_ta.table2_specs

let test_broken_resilience_witness () =
  let u = Holistic.Universe.build Models.Simplified_ta.automaton_broken_resilience in
  check_identical "broken-resilience Inv1_0" u Models.Simplified_ta.inv1_0;
  (* And the shared outcome really is the counterexample. *)
  let r = Ck.verify_with_universe ~limits:(limits 4) u Models.Simplified_ta.inv1_0 in
  match r.Ck.outcome with
  | Ck.Violated w ->
    let value p = List.assoc p w.Holistic.Witness.params in
    Alcotest.(check bool) "witness breaks n > 3t" true (value "n" <= 3 * value "t")
  | _ -> Alcotest.fail "expected a counterexample"

(* ------------------------------------------------------------------ *)
(* Differential property over random DAG automata: whatever the
   sequential engine says, the parallel engine must say the same thing,
   schema-for-schema.                                                   *)

let locations = [ "L0"; "L1"; "L2"; "L3" ]

let guard_pool =
  [
    G.tt;
    G.ge1 "x" (P.const 1);
    G.ge1 "x" (P.const 2);
    G.ge1 "y" (P.const 1);
    G.ge [ ("x", 1); ("y", 1) ] (P.const 2);
  ]

let update_pool = [ []; [ ("x", 1) ]; [ ("y", 1) ] ]

type rule_desc = { src : int; dst : int; guard : int; update : int; fair : bool }

let arb_ta =
  let open QCheck in
  let edges =
    List.concat_map
      (fun i -> List.filter_map (fun j -> if j > i then Some (i, j) else None) [ 0; 1; 2; 3 ])
      [ 0; 1; 2 ]
  in
  let arb_desc (src, dst) =
    map
      (fun (present, guard, update, fair) ->
        if present then Some { src; dst; guard; update; fair } else None)
      (tup4 bool
         (int_range 0 (List.length guard_pool - 1))
         (int_range 0 (List.length update_pool - 1))
         bool)
  in
  let rec sequence = function
    | [] -> Gen.return []
    | g :: gs -> Gen.map2 (fun x xs -> x :: xs) g (sequence gs)
  in
  let gens = List.map (fun e -> (arb_desc e).gen) edges in
  make
    ~print:(fun descs ->
      String.concat ";"
        (List.map
           (function
             | None -> "-"
             | Some d ->
               Printf.sprintf "%d->%d g%d u%d %s" d.src d.dst d.guard d.update
                 (if d.fair then "F" else "U"))
           descs))
    (sequence gens)

let build_ta descs =
  let rules =
    List.concat_map
      (function
        | None -> []
        | Some d ->
          [
            A.rule
              (Printf.sprintf "r%d%d" d.src d.dst)
              ~source:(List.nth locations d.src) ~target:(List.nth locations d.dst)
              ~guard:(List.nth guard_pool d.guard)
              ~update:(List.nth update_pool d.update)
              ~fairness:(if d.fair then A.Fair else A.Unfair);
          ])
      descs
  in
  A.make ~name:"random" ~params:[ "n" ] ~shared:[ "x"; "y" ] ~locations
    ~initial:[ "L0"; "L1" ]
    ~resilience:[ P.of_terms [ ("n", 1) ] (-1) ]
    ~population:(P.param "n") ~rules ()

let reach_spec =
  S.invariant ~name:"reach-L3" ~ltl:"<>(k[L3] != 0)"
    ~bad:[ ("L3 reached", C.some_nonempty [ "L3" ]) ]
    ()

let drain_spec =
  S.liveness ~name:"drain" ~ltl:"<>(k[L0]=0 /\\ k[L1]=0 /\\ k[L2]=0)"
    ~target_violated:(C.some_nonempty [ "L0"; "L1"; "L2" ])
    ()

let engines_agree spec descs =
  let ta = build_ta descs in
  let verify jobs = Ck.verify ~limits:(limits ~max_schemas:5_000 jobs) ta spec in
  let seq = verify 1 in
  let par = verify 3 in
  outcome_repr seq.Ck.outcome = outcome_repr par.Ck.outcome
  && seq.Ck.stats.schemas_checked = par.Ck.stats.schemas_checked
  && seq.Ck.stats.slots_total = par.Ck.stats.slots_total

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"random DAGs: reachability engines agree" ~count:40 arb_ta
         (engines_agree reach_spec));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"random DAGs: liveness engines agree" ~count:40 arb_ta
         (engines_agree drain_spec));
  ]

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "all jobs pass" `Quick test_pool_all_pass;
          Alcotest.test_case "first stop is sequential" `Quick
            test_pool_first_stop_deterministic;
          Alcotest.test_case "worker exception quarantines" `Quick
            test_pool_worker_exception;
          Alcotest.test_case "transient worker exception retries" `Quick
            test_pool_worker_retry;
          Alcotest.test_case "jobs=0 rejected" `Quick test_pool_bad_jobs;
        ] );
      ("bv jobs=1 vs jobs=4", bv_tests);
      ("simplified jobs=1 vs jobs=4", simplified_full_tests @ simplified_budgeted_tests);
      ( "abort and witness paths",
        [
          Alcotest.test_case "naive budget aborts identically" `Slow test_naive_budget_abort;
          Alcotest.test_case "broken-resilience witness identical" `Quick
            test_broken_resilience_witness;
        ] );
      ("random automata", qcheck_tests);
    ]
