(* Robustness battery for the verification daemon (lib/service).

   Soundness contract under test: whatever the daemon suffers — worker
   crashes at deterministic or random positions, SIGKILL from outside,
   hung discharges, a SIGTERM of the daemon itself followed by a
   restart — every job's verdict, witness and schema count must be
   byte-identical to the sequential in-process checker, and a job may
   degrade to the fail-soft [Partial] verdict only when a slice's retry
   budget is truly exhausted (a deterministic poison pill), never under
   mere crash churn. *)

module J = Jsonc
module Ck = Holistic.Checker

(* cwd is _build/default/test under `dune runtest`, the project root
   under `dune exec test/test_service.exe`. *)
let bin =
  let candidates =
    [
      "../bin/holistic_cli.exe";
      "_build/default/bin/holistic_cli.exe";
      "bin/holistic_cli.exe";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> "../bin/holistic_cli.exe"

let next_dir = ref 0

let fresh_state_dir () =
  incr next_dir;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "holistic-svc-%d-%d" (Unix.getpid ()) !next_dir)
  in
  let rec rm p =
    if Sys.file_exists p then
      if Sys.is_directory p then begin
        Array.iter (fun f -> rm (Filename.concat p f)) (Sys.readdir p);
        Unix.rmdir p
      end
      else Sys.remove p
  in
  rm d;
  d

(* ------------------------------------------------------------------- *)
(* Daemon harness. *)

type daemon = { pid : int; state_dir : string }

let start_daemon ?(workers = 2) ?(slice_size = 8) ?(ckpt_every = 1)
    ?(retry_budget = 5) ?(hb_timeout = 30.0) ?(failpoints = []) () =
  let state_dir = fresh_state_dir () in
  let args =
    [
      bin; "serve"; "--state"; state_dir;
      "--workers"; string_of_int workers;
      "--slice-size"; string_of_int slice_size;
      "--worker-ckpt-every"; string_of_int ckpt_every;
      "--retry-budget"; string_of_int retry_budget;
      "--heartbeat-timeout"; Printf.sprintf "%g" hb_timeout;
      "--hb-interval"; "0.2";
    ]
    @ List.concat_map (fun f -> [ "--failpoint"; f ]) failpoints
  in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let pid =
    Unix.create_process bin (Array.of_list args) devnull devnull devnull
  in
  Unix.close devnull;
  { pid; state_dir }

(* Relaunch on the same state directory: the restarted daemon must pick
   the drained jobs back up from their journal frontiers. *)
let restart_daemon d =
  let args =
    [ bin; "serve"; "--state"; d.state_dir; "--workers"; "2"; "--slice-size"; "8";
      "--worker-ckpt-every"; "1"; "--retry-budget"; "5"; "--hb-interval"; "0.2" ]
  in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let pid = Unix.create_process bin (Array.of_list args) devnull devnull devnull in
  Unix.close devnull;
  { pid; state_dir = d.state_dir }

let stop_daemon d =
  (try Unix.kill d.pid Sys.sigterm with Unix.Unix_error _ -> ());
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec reap () =
    match Unix.waitpid [ Unix.WNOHANG ] d.pid with
    | 0, _ ->
      if Unix.gettimeofday () > deadline then begin
        (try Unix.kill d.pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] d.pid)
      end
      else begin
        Unix.sleepf 0.05;
        reap ()
      end
    | _ -> ()
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
  in
  reap ()

let with_daemon ?workers ?slice_size ?ckpt_every ?retry_budget ?hb_timeout
    ?failpoints f =
  let d =
    start_daemon ?workers ?slice_size ?ckpt_every ?retry_budget ?hb_timeout
      ?failpoints ()
  in
  Fun.protect ~finally:(fun () -> stop_daemon d) (fun () -> f d)

let connect d =
  match Service.Client.connect ~retries:100 ~state_dir:d.state_dir () with
  | Ok c -> c
  | Error e -> Alcotest.fail ("connect: " ^ e)

let submit_wait d ~model ?spec ?max_schemas () =
  let c = connect d in
  Fun.protect
    ~finally:(fun () -> Service.Client.close c)
    (fun () ->
      match Service.Client.submit c ~model ?spec ?max_schemas () with
      | Error e -> Alcotest.fail ("submit: " ^ e)
      | Ok ids -> (
        match Service.Client.wait_jobs c ids with
        | Error e -> Alcotest.fail ("wait: " ^ e)
        | Ok rows -> List.map snd rows))

(* Sequential in-process reference: the row the daemon must reproduce
   byte-for-byte. *)
let local_rows ~model ?spec ?(max_schemas = 100_000) () =
  match Service.Registry.find_specs model spec with
  | Error e -> Alcotest.fail e
  | Ok (ta, specs) ->
    let u = Holistic.Universe.build ta in
    let limits = { Ck.default_limits with max_schemas } in
    List.map
      (fun s ->
        Service.Protocol.row_of_result ~model (Ck.verify_with_universe ~limits u s))
      specs

let sorted_strings rows = List.sort compare (List.map J.to_string rows)

let contains_substring haystack needle =
  let n = String.length needle and l = String.length haystack in
  let rec go i = i + n <= l && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let check_rows_match what daemon_rows reference_rows =
  Alcotest.(check (list string))
    what
    (sorted_strings reference_rows)
    (sorted_strings daemon_rows)

(* ------------------------------------------------------------------- *)
(* Tests. *)

let test_faultless_end_to_end () =
  with_daemon ~ckpt_every:16 (fun d ->
      check_rows_match "bv rows"
        (submit_wait d ~model:"bv" ())
        (local_rows ~model:"bv" ());
      (* strb has a violated property: the witness must match too. *)
      check_rows_match "strb rows"
        (submit_wait d ~model:"strb" ())
        (local_rows ~model:"strb" ()))

let test_budget_abort_matches () =
  with_daemon (fun d ->
      check_rows_match "capped simplified row"
        (submit_wait d ~model:"simplified" ~spec:"Inv1_0" ~max_schemas:120 ())
        (local_rows ~model:"simplified" ~spec:"Inv1_0" ~max_schemas:120 ()))

(* Crash churn: every worker SIGKILLs itself before every Nth
   discharge, forever (respawned workers crash again).  With a slice
   checkpoint cadence of 1, every attempt makes durable progress, so
   the retry counter keeps resetting and the job must converge to the
   exact sequential verdict — quarantine under churn would be a bug. *)
let qcheck_kill_anywhere =
  QCheck.Test.make ~count:4 ~name:"worker-crash:N churn is bit-identical"
    (QCheck.int_range 2 12)
    (fun n ->
      with_daemon
        ~failpoints:[ Printf.sprintf "worker-crash:%d" n ]
        (fun d ->
          let rows = submit_wait d ~model:"bv" ~spec:"BV-Term" () in
          let reference = local_rows ~model:"bv" ~spec:"BV-Term" () in
          sorted_strings rows = sorted_strings reference))

let test_external_sigkill_mid_slice () =
  with_daemon ~slice_size:8 (fun d ->
      let c = connect d in
      Fun.protect
        ~finally:(fun () -> Service.Client.close c)
        (fun () ->
          let ids =
            match
              Service.Client.submit c ~model:"simplified" ~spec:"Inv1_0"
                ~max_schemas:200 ()
            with
            | Ok ids -> ids
            | Error e -> Alcotest.fail e
          in
          (* While the job runs, SIGKILL whichever worker is busy —
             twice, with a breather, to hit different slices. *)
          let kill_busy () =
            match Service.Client.request c (J.Obj [ ("t", J.Str "status") ]) with
            | Error _ -> ()
            | Ok st ->
              List.iter
                (fun w ->
                  match J.member "task" w with
                  | J.Null -> ()
                  | _ -> (
                    try Unix.kill (J.to_int (J.member "pid" w)) Sys.sigkill
                    with Unix.Unix_error _ -> ()))
                (J.to_list (J.member "workers" st))
          in
          Unix.sleepf 0.3;
          kill_busy ();
          Unix.sleepf 0.4;
          kill_busy ();
          match Service.Client.wait_jobs c ids with
          | Error e -> Alcotest.fail e
          | Ok rows ->
            check_rows_match "rows after external SIGKILL"
              (List.map snd rows)
              (local_rows ~model:"simplified" ~spec:"Inv1_0" ~max_schemas:200 ())))

(* Poison pill: the worker dies at the same absolute position every
   attempt, so no retry makes progress past it; the budget exhausts and
   exactly that position is quarantined — and only then. *)
let test_poison_pill_quarantines () =
  with_daemon ~retry_budget:2 ~failpoints:[ "worker-crash-at:10" ] (fun d ->
      match submit_wait d ~model:"bv" ~spec:"BV-Term" () with
      | [ row ] ->
        Alcotest.(check string)
          "outcome" "partial"
          (J.to_str (J.member "outcome" row));
        (match J.to_list (J.member "quarantined" row) with
        | [ entry ] -> (
          match J.to_list entry with
          | [ pos; msg ] ->
            Alcotest.(check int) "hole at the poison position" 10 (J.to_int pos);
            Alcotest.(check bool)
              "reason records the exhausted budget" true
              (contains_substring (J.to_str msg) "retry budget")
          | _ -> Alcotest.fail "malformed quarantine entry")
        | q -> Alcotest.failf "expected one hole, got %d" (List.length q))
      | rows -> Alcotest.failf "expected one row, got %d" (List.length rows))

(* A raising discharge is the checker's own in-process fail-soft path:
   the position is quarantined inside the worker (after the checker's
   own retry), and the daemon adopts the hole verbatim. *)
let test_raise_at_propagates_checker_quarantine () =
  with_daemon ~failpoints:[ "worker-raise-at:10" ] (fun d ->
      match submit_wait d ~model:"bv" ~spec:"BV-Term" () with
      | [ row ] ->
        Alcotest.(check string)
          "outcome" "partial"
          (J.to_str (J.member "outcome" row));
        (match J.to_list (J.member "quarantined" row) with
        | [ entry ] -> (
          match J.to_list entry with
          | pos :: _ ->
            Alcotest.(check int) "checker quarantined exactly 10" 10 (J.to_int pos)
          | [] -> Alcotest.fail "empty quarantine entry")
        | q -> Alcotest.failf "expected one hole, got %d" (List.length q))
      | rows -> Alcotest.failf "expected one row, got %d" (List.length rows))

(* A hung discharge does not hang the job: the worker's heartbeat
   reports a stalled position, the coordinator SIGKILLs it past the
   deadline, and — since the hang recurs at the same position every
   attempt — the retry budget eventually quarantines exactly that
   position. *)
let test_hang_heartbeat_kill () =
  with_daemon ~retry_budget:1 ~hb_timeout:1.5
    ~failpoints:[ "worker-hang-at:10" ] (fun d ->
      match submit_wait d ~model:"bv" ~spec:"BV-Term" () with
      | [ row ] ->
        Alcotest.(check string)
          "outcome" "partial"
          (J.to_str (J.member "outcome" row));
        (match J.to_list (J.member "quarantined" row) with
        | [ entry ] -> (
          match J.to_list entry with
          | pos :: _ ->
            Alcotest.(check int) "hole at the hang position" 10 (J.to_int pos)
          | [] -> Alcotest.fail "empty quarantine entry")
        | q -> Alcotest.failf "expected one hole, got %d" (List.length q))
      | rows -> Alcotest.failf "expected one row, got %d" (List.length rows))

(* SIGTERM mid-flight flushes every journal; a restarted daemon on the
   same state directory resumes the job from its frontier and lands on
   the bit-identical verdict. *)
let test_sigterm_drain_and_restart_resumes () =
  let d = start_daemon ~slice_size:8 () in
  let ids =
    let c = connect d in
    Fun.protect
      ~finally:(fun () -> Service.Client.close c)
      (fun () ->
        match
          Service.Client.submit c ~model:"simplified" ~spec:"Inv1_0"
            ~max_schemas:250 ()
        with
        | Ok ids -> ids
        | Error e -> Alcotest.fail e)
  in
  Unix.sleepf 0.6;
  stop_daemon d;
  (* The drained state must already hold a manifest and a job journal. *)
  Alcotest.(check bool)
    "manifest flushed" true
    (Sys.file_exists (Filename.concat d.state_dir "jobs.json"));
  let d2 = restart_daemon d in
  Fun.protect
    ~finally:(fun () -> stop_daemon d2)
    (fun () ->
      let c = connect d2 in
      Fun.protect
        ~finally:(fun () -> Service.Client.close c)
        (fun () ->
          match Service.Client.wait_jobs c ids with
          | Error e -> Alcotest.fail e
          | Ok rows ->
            check_rows_match "resumed verdict"
              (List.map snd rows)
              (local_rows ~model:"simplified" ~spec:"Inv1_0" ~max_schemas:250 ())))

let () =
  Alcotest.run "service"
    [
      ( "daemon",
        [
          Alcotest.test_case "faultless end-to-end rows match" `Quick
            test_faultless_end_to_end;
          Alcotest.test_case "budget abort matches" `Quick test_budget_abort_matches;
          Alcotest.test_case "external SIGKILL mid-slice" `Quick
            test_external_sigkill_mid_slice;
          Alcotest.test_case "poison pill quarantines (budget exhausted)" `Quick
            test_poison_pill_quarantines;
          Alcotest.test_case "raise-at propagates checker quarantine" `Quick
            test_raise_at_propagates_checker_quarantine;
          Alcotest.test_case "hung discharge killed via heartbeat" `Quick
            test_hang_heartbeat_kill;
          Alcotest.test_case "SIGTERM drain + restart resumes" `Quick
            test_sigterm_drain_and_restart_resumes;
        ] );
      ( "kill anywhere",
        [ QCheck_alcotest.to_alcotest qcheck_kill_anywhere ] );
    ]
