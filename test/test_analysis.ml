(* Tests for the static analyzer and slicer (lib/analysis): a mutant
   suite — for each diagnostic code one minimal automaton that trips
   exactly that code, next to a clean twin that does not — plus
   cross-validation that slicing preserves the parameterized checker's
   outcomes and witnesses and the explicit-state small-parameter
   semantics on the paper's models. *)

module A = Ta.Automaton
module G = Ta.Guard
module C = Ta.Cond
module S = Ta.Spec
module P = Ta.Pexpr
module An = Analysis

let codes ds = List.sort_uniq compare (List.map (fun (d : An.diagnostic) -> d.code) ds)

let check_codes name expected ds =
  Alcotest.(check (list string)) name (List.sort_uniq compare expected) (codes ds)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* A well-formed chain A --t1(x++)--> B --t2[x >= 1]--> C used as the
   clean twin of most mutants. *)
let mk ?(shared = [ "x" ]) ?(locations = [ "A"; "B"; "C" ])
    ?(resilience = [ P.of_terms [ ("n", 1) ] (-1) ]) ?(population = P.param "n") ~rules () =
  A.make ~name:"m" ~params:[ "n" ] ~shared ~locations ~initial:[ "A" ] ~resilience
    ~population ~rules ()

let chain =
  mk
    ~rules:
      [
        A.rule "t1" ~source:"A" ~target:"B" ~update:[ ("x", 1) ];
        A.rule "t2" ~source:"B" ~target:"C" ~guard:(G.ge1 "x" (P.const 1));
      ]
    ()

(* A raw automaton record bypassing [A.make], for the structural mutants
   that [make] itself would reject (TA001-TA003). *)
let raw ?(shared = [ "x" ]) ~rules () : A.t =
  {
    name = "raw";
    params = [ "n" ];
    shared;
    locations = [ "A"; "B" ];
    initial = [ "A" ];
    resilience = [ P.of_terms [ ("n", 1) ] (-1) ];
    population = P.param "n";
    rules;
    justice = [];
    round_switch = [];
    self_loops = 0;
  }

(* ------------------------------------------------------------------ *)
(* Mutants: one per diagnostic code, each with a clean twin.            *)

let test_clean_twin () = check_codes "chain is clean" [] (An.run chain)

let test_ta001_unknown_name () =
  check_codes "unknown source location" [ "TA001" ]
    (An.run (raw ~shared:[] ~rules:[ A.rule "t" ~source:"Z" ~target:"B" ] ()));
  check_codes "twin" []
    (An.run (raw ~shared:[] ~rules:[ A.rule "t" ~source:"A" ~target:"B" ] ()))

(* A raw twin where x is produced and read: fully clean. *)
let raw_clean_rules guard update =
  [
    A.rule "p" ~source:"A" ~target:"B" ~update;
    { (A.rule "g" ~source:"A" ~target:"B") with guard };
  ]

let test_ta002_non_monotone_guard () =
  let atom coeff : G.atom = { shared = [ ("x", coeff) ]; bound = P.const 1 } in
  let with_guard g = raw ~rules:(raw_clean_rules g [ ("x", 1) ]) () in
  check_codes "zero coefficient" [ "TA002" ] (An.run (with_guard [ atom 0 ]));
  check_codes "negative coefficient" [ "TA002" ] (An.run (with_guard [ atom (-1) ]));
  check_codes "twin" [] (An.run (with_guard [ atom 1 ]))

let test_ta003_negative_update () =
  let with_update u = raw ~rules:(raw_clean_rules (G.ge1 "x" (P.const 1)) u) () in
  check_codes "decrement" [ "TA003" ] (An.run (with_update [ ("x", -1) ]));
  check_codes "twin" [] (An.run (with_update [ ("x", 1) ]))

let test_ta004_cycle () =
  let cyclic =
    mk ~shared:[] ~locations:[ "A"; "B" ]
      ~rules:[ A.rule "ab" ~source:"A" ~target:"B"; A.rule "ba" ~source:"B" ~target:"A" ]
      ()
  in
  check_codes "cycle" [ "TA004" ] (An.run cyclic);
  check_codes "twin" []
    (An.run (mk ~shared:[] ~locations:[ "A"; "B" ] ~rules:[ A.rule "ab" ~source:"A" ~target:"B" ] ()))

let test_ta005_resilience_unsat () =
  (* -n - 1 >= 0 has no solution over n >= 0; the semantic passes that
     reason modulo the resilience condition are skipped. *)
  let m =
    mk ~shared:[] ~locations:[ "A"; "B" ]
      ~resilience:[ P.of_terms [ ("n", -1) ] (-1) ]
      ~rules:[ A.rule "t" ~source:"A" ~target:"B" ] ()
  in
  check_codes "unsat resilience" [ "TA005" ] (An.run m)

let test_ta006_negative_population () =
  let m =
    mk ~shared:[] ~locations:[ "A"; "B" ]
      ~resilience:[ P.param "n" ]
      ~population:(P.of_terms [ ("n", 1) ] (-5))
      ~rules:[ A.rule "t" ~source:"A" ~target:"B" ] ()
  in
  check_codes "population may go negative" [ "TA006" ] (An.run m);
  check_codes "twin" []
    (An.run
       (mk ~shared:[] ~locations:[ "A"; "B" ]
          ~resilience:[ P.param "n" ]
          ~rules:[ A.rule "t" ~source:"A" ~target:"B" ] ()))

let test_ta007_unreachable_location () =
  let m =
    mk ~shared:[] ~locations:[ "A"; "B"; "Z" ] ~rules:[ A.rule "t" ~source:"A" ~target:"B" ] ()
  in
  let ds = An.run m in
  check_codes "unreachable location" [ "TA007" ] ds;
  Alcotest.(check bool) "subject is Z" true
    (List.exists (fun (d : An.diagnostic) -> d.subject = An.Location "Z") ds)

let test_ta008_unsat_guard () =
  (* 0 >= 1 can never hold; a live sibling keeps C reachable so only the
     dead rule is reported. *)
  let m =
    mk ~shared:[]
      ~rules:
        [
          A.rule "t1" ~source:"A" ~target:"B";
          A.rule "t2" ~source:"A" ~target:"C";
          A.rule "dead" ~source:"B" ~target:"C" ~guard:(G.ge [] (P.const 1));
        ]
      ()
  in
  let ds = An.run m in
  check_codes "unsatisfiable guard" [ "TA008" ] ds;
  Alcotest.(check bool) "subject is the dead rule" true
    (List.exists (fun (d : An.diagnostic) -> d.subject = An.Rule "dead") ds)

let test_ta008_unproducible_guard () =
  (* y is read but nothing increments it, so [y >= 1] can never unlock.
     (Read-but-never-written is TA008 territory, not TA009.)  The
     invariant engine independently proves the same atom statically
     false, so the fixpoint pass co-reports TA022. *)
  let m =
    mk ~shared:[ "x"; "y" ]
      ~rules:
        [
          A.rule "t1" ~source:"A" ~target:"B" ~update:[ ("x", 1) ];
          A.rule "t2" ~source:"B" ~target:"C" ~guard:(G.ge1 "x" (P.const 1));
          A.rule "dead" ~source:"A" ~target:"C" ~guard:(G.ge1 "y" (P.const 1));
        ]
      ()
  in
  check_codes "unproducible guard atom" [ "TA008"; "TA022" ] (An.run m)

let test_ta009_unused_shared () =
  (* y is written but never read; z is never touched at all. *)
  let m =
    mk ~shared:[ "x"; "y"; "z" ]
      ~rules:
        [
          A.rule "t1" ~source:"A" ~target:"B" ~update:[ ("x", 1); ("y", 1) ];
          A.rule "t2" ~source:"B" ~target:"C" ~guard:(G.ge1 "x" (P.const 1));
        ]
      ()
  in
  let ds = An.run m in
  check_codes "unused shared variables" [ "TA009" ] ds;
  Alcotest.(check int) "both y and z reported" 2 (List.length ds)

let test_ta010_atom_budget () =
  (* r0 produces x; n distinct atoms [x >= 1 .. x >= n] are all live. *)
  let wide n =
    mk ~locations:[ "A"; "B" ]
      ~rules:
        (A.rule "r0" ~source:"A" ~target:"B" ~update:[ ("x", 1) ]
        :: List.init n (fun i ->
               A.rule
                 ("g" ^ string_of_int i)
                 ~source:"A" ~target:"B"
                 ~guard:(G.ge1 "x" (P.const (i + 1)))))
      ()
  in
  check_codes "twin below the headroom" [] (An.run (wide 52));
  let warn = An.run (wide 53) in
  check_codes "headroom warning" [ "TA010" ] warn;
  Alcotest.(check bool) "warning severity" true (An.max_severity warn = Some An.Warning);
  let err = An.run (wide 63) in
  check_codes "over the 62-atom limit" [ "TA010" ] err;
  Alcotest.(check bool) "error severity" true (An.max_severity err = Some An.Error)

let test_ta011_spec_unknown_name () =
  let bad locs = S.invariant ~name:"s" ~ltl:"s" ~bad:[ ("b", C.some_nonempty locs) ] () in
  check_codes "unknown location in spec" [ "TA011" ] (An.check_spec chain (bad [ "ZZZ" ]));
  check_codes "twin" [] (An.check_spec chain (bad [ "C" ]))

let test_ta012_irrefutable_safety () =
  check_codes "no observations" [ "TA012" ]
    (An.check_spec chain (S.invariant ~name:"s" ~ltl:"s" ~bad:[] ()))

let test_ta013_liveness_never_enter () =
  let live =
    S.liveness ~name:"s" ~ltl:"s" ~target_violated:(C.some_nonempty [ "A"; "B" ]) ()
  in
  check_codes "twin" [] (An.check_spec chain live);
  check_codes "liveness with never_enter" [ "TA013" ]
    (An.check_spec chain { live with S.never_enter = [ "A" ] })

let test_ta014_non_absorbing_target () =
  (* Emptiness of {B} alone is not absorbing: t1 refills B from A. *)
  let live target =
    S.liveness ~name:"s" ~ltl:"s" ~target_violated:(C.some_nonempty target) ()
  in
  check_codes "non-absorbing target" [ "TA014" ] (An.check_spec chain (live [ "B" ]));
  check_codes "twin" [] (An.check_spec chain (live [ "A"; "B" ]))

let test_ta015_justice_assumption () =
  (* The simplified TA imports bv-broadcast properties proven under
     n > 3t as justice constraints; weakening its own resilience to
     n > 2t (which is satisfiable, so TA005 cannot catch it) must be
     flagged. *)
  let assume = Models.Params.resilience in
  check_codes "broken resilience rejected" [ "TA015" ]
    (An.run ~assume Models.Simplified_ta.automaton_broken_resilience);
  check_codes "twin" [] (An.run ~assume Models.Simplified_ta.automaton)

(* ------------------------------------------------------------------ *)
(* Every bundled model lints clean with its own specs.                  *)

let test_paper_models_clean () =
  check_codes "bv-broadcast" []
    (An.run ~specs:Models.Bv_ta.all_specs Models.Bv_ta.automaton);
  check_codes "naive consensus" []
    (An.run ~specs:Models.Naive_ta.table2_specs Models.Naive_ta.automaton);
  check_codes "simplified consensus" []
    (An.run ~assume:Models.Params.resilience ~specs:Models.Simplified_ta.table2_specs
       Models.Simplified_ta.automaton);
  (* ben-or carries two known info-level TA021 trivial thresholds
     (-f + 1 is non-positive whenever f >= 1); nothing above info may
     appear.  CI's lint gate pins the same contract. *)
  let benor = An.run ~specs:Models.Ben_or.all_specs Models.Ben_or.automaton in
  check_codes "ben-or" [ "TA021" ] benor;
  Alcotest.(check (option string)) "ben-or max severity" (Some "info")
    (Option.map An.severity_to_string (An.max_severity benor))

(* ------------------------------------------------------------------ *)
(* Satellite: find_rule raises a named Invalid_argument.                *)

let test_find_rule () =
  Alcotest.(check string) "found" "t1" (A.find_rule chain "t1").A.name;
  match A.find_rule chain "nope" with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "names the automaton" true (contains msg "m");
    Alcotest.(check bool) "names the missing rule" true (contains msg "nope")

(* ------------------------------------------------------------------ *)
(* Slicing.                                                             *)

let outcome_repr (r : Holistic.Checker.result) =
  match r.outcome with
  | Holistic.Checker.Holds -> "holds"
  | Holistic.Checker.Violated w -> Format.asprintf "violated@\n%a" Holistic.Witness.pp w
  | Holistic.Checker.Aborted reason -> "aborted: " ^ reason
  | Holistic.Checker.Partial { reason; _ } -> "partial: " ^ reason

let keep_of specs = List.concat_map An.spec_locations specs

(* The clean models slice to themselves, diagnostics-free. *)
let test_slice_identity () =
  List.iter
    (fun (label, ta, specs) ->
      let sliced, ds = An.slice ~keep:(keep_of specs) ta in
      Alcotest.(check bool) (label ^ " unchanged") true (sliced = ta);
      check_codes (label ^ " no removals") [] ds)
    [
      ("bv", Models.Bv_ta.automaton, Models.Bv_ta.all_specs);
      ("naive", Models.Naive_ta.automaton, Models.Naive_ta.table2_specs);
      ("simplified", Models.Simplified_ta.automaton, Models.Simplified_ta.table2_specs);
      ( "broken",
        Models.Simplified_ta.automaton_broken_resilience,
        [ Models.Simplified_ta.inv1_0 ] );
      ("benor", Models.Ben_or.automaton, Models.Ben_or.all_specs);
    ]

(* verify ~slice is bit-identical to verify on every bv spec. *)
let test_slice_verify_bv () =
  List.iter
    (fun (spec : S.t) ->
      let plain = Holistic.Checker.verify Models.Bv_ta.automaton spec in
      let sliced = Holistic.Checker.verify ~slice:true Models.Bv_ta.automaton spec in
      Alcotest.(check string) (spec.S.name ^ " outcome") (outcome_repr plain)
        (outcome_repr sliced);
      Alcotest.(check int) (spec.S.name ^ " schemas") plain.stats.schemas_checked
        sliced.stats.schemas_checked;
      Alcotest.(check int) (spec.S.name ^ " slots") plain.stats.slots_total
        sliced.stats.slots_total)
    Models.Bv_ta.all_specs

(* A dead gadget: an unreachable location whose outgoing rule carries a
   fresh satisfiable, producible guard atom.  Unsliced, the atom joins
   the universe and inflates every context; slicing must restore the
   pristine automaton exactly. *)
let dead_gadget (ta : A.t) ~target ~var =
  {
    ta with
    locations = ta.locations @ [ "ZZ" ];
    rules = ta.rules @ [ A.rule "zz" ~source:"ZZ" ~target ~guard:(G.ge1 var (P.const 7)) ];
  }

let test_slice_mutant_restores_pristine () =
  let pristine = Models.Simplified_ta.automaton in
  let mutant = dead_gadget pristine ~target:"D1" ~var:"bvb0" in
  let sliced, ds = An.slice ~keep:(keep_of Models.Simplified_ta.table2_specs) mutant in
  Alcotest.(check bool) "slice of mutant = pristine" true (sliced = pristine);
  check_codes "removal diagnostics" [ "TA007"; "TA008"; "TA016" ] ds

let test_slice_mutant_schema_counts () =
  let pristine = Models.Simplified_ta.automaton in
  let mutant = dead_gadget pristine ~target:"D1" ~var:"bvb0" in
  let sliced, _ = An.slice ~keep:(keep_of Models.Simplified_ta.table2_specs) mutant in
  let count ta =
    match
      Holistic.Schema.count (Holistic.Universe.build ta) Models.Simplified_ta.inv2_0
        ~limit:1_000_000
    with
    | `Exactly n -> n
    | `More_than n -> n
  in
  let unsliced_n = count mutant and sliced_n = count sliced and pristine_n = count pristine in
  Alcotest.(check bool) "strictly fewer schemas after slicing" true (sliced_n < unsliced_n);
  Alcotest.(check int) "sliced matches pristine" pristine_n sliced_n

(* Full verification of a bv mutant: same verdict, strictly fewer
   schemas with --slice. *)
let test_slice_mutant_verify_bv () =
  let mutant = dead_gadget Models.Bv_ta.automaton ~target:"C01" ~var:"b0" in
  let spec = List.hd Models.Bv_ta.table2_specs in
  let plain = Holistic.Checker.verify mutant spec in
  let sliced = Holistic.Checker.verify ~slice:true mutant spec in
  Alcotest.(check string) "same outcome" (outcome_repr plain) (outcome_repr sliced);
  Alcotest.(check bool) "strictly fewer schemas" true
    (sliced.stats.schemas_checked < plain.stats.schemas_checked);
  (* The sliced run is bit-identical to the pristine automaton's run. *)
  let pristine = Holistic.Checker.verify Models.Bv_ta.automaton spec in
  Alcotest.(check int) "pristine schema count" pristine.stats.schemas_checked
    sliced.stats.schemas_checked

(* Witness preservation on a violated property: slicing the broken
   resilience mutant reproduces the pristine counterexample verbatim. *)
let test_slice_preserves_witness () =
  let pristine = Models.Simplified_ta.automaton_broken_resilience in
  let mutant = dead_gadget pristine ~target:"D1" ~var:"bvb0" in
  let spec = Models.Simplified_ta.inv1_0 in
  let reference = Holistic.Checker.verify pristine spec in
  let sliced = Holistic.Checker.verify ~slice:true mutant spec in
  Alcotest.(check string) "witness bit-identical to pristine run" (outcome_repr reference)
    (outcome_repr sliced);
  let plain = Holistic.Checker.verify mutant spec in
  (match plain.outcome with
   | Holistic.Checker.Violated _ -> ()
   | _ -> Alcotest.fail "mutant must still be violated unsliced")

(* Explicit small-parameter semantics agree between mutant and slice on
   every bv-broadcast and simplified-consensus spec. *)
let explicit_name = function
  | Explicit.Holds -> "holds"
  | Explicit.Violated _ -> "violated"

let test_slice_explicit_crossval () =
  let params = [ ("n", 4); ("t", 1); ("f", 1) ] in
  let crossval label (ta : A.t) ~target ~var specs keep =
    let mutant = dead_gadget ta ~target ~var in
    let sliced, _ = An.slice ~keep mutant in
    List.iter
      (fun (spec : S.t) ->
        Alcotest.(check string)
          (label ^ " " ^ spec.S.name)
          (explicit_name (Explicit.check mutant spec params))
          (explicit_name (Explicit.check sliced spec params)))
      specs
  in
  crossval "bv" Models.Bv_ta.automaton ~target:"C01" ~var:"b0" Models.Bv_ta.all_specs
    (keep_of Models.Bv_ta.all_specs);
  crossval "simplified" Models.Simplified_ta.automaton ~target:"D1" ~var:"bvb0"
    Models.Simplified_ta.table2_specs
    (keep_of Models.Simplified_ta.table2_specs)

(* Spec-referenced locations survive slicing even when unreachable, so
   the encoder never meets an unknown name. *)
let test_slice_keeps_spec_locations () =
  let ta =
    mk ~shared:[] ~locations:[ "A"; "B"; "Z" ] ~rules:[ A.rule "t" ~source:"A" ~target:"B" ] ()
  in
  let spec = S.invariant ~name:"z" ~ltl:"z" ~bad:[ ("b", C.some_nonempty [ "Z" ]) ] () in
  let sliced, _ = An.slice ~keep:(An.spec_locations spec) ta in
  Alcotest.(check bool) "Z kept" true (List.mem "Z" sliced.A.locations);
  let plain = Holistic.Checker.verify ta spec in
  let with_slice = Holistic.Checker.verify ~slice:true ta spec in
  Alcotest.(check string) "outcome" (outcome_repr plain) (outcome_repr with_slice)

(* ------------------------------------------------------------------ *)
(* Rendering.                                                           *)

let test_json () =
  let j = An.to_json ~ta_name:"bv_broadcast" (An.run Models.Bv_ta.automaton) in
  Alcotest.(check bool) "clean json" true
    (contains j "\"errors\":0" && contains j "\"warnings\":0");
  let j =
    An.to_json ~ta_name:"x"
      (An.run ~assume:Models.Params.resilience
         Models.Simplified_ta.automaton_broken_resilience)
  in
  Alcotest.(check bool) "broken json mentions TA015" true (contains j "TA015")

let () =
  Alcotest.run "analysis"
    [
      ( "diagnostics",
        [
          Alcotest.test_case "clean twin" `Quick test_clean_twin;
          Alcotest.test_case "TA001 unknown name" `Quick test_ta001_unknown_name;
          Alcotest.test_case "TA002 non-monotone guard" `Quick test_ta002_non_monotone_guard;
          Alcotest.test_case "TA003 negative update" `Quick test_ta003_negative_update;
          Alcotest.test_case "TA004 cycle" `Quick test_ta004_cycle;
          Alcotest.test_case "TA005 unsat resilience" `Quick test_ta005_resilience_unsat;
          Alcotest.test_case "TA006 negative population" `Quick test_ta006_negative_population;
          Alcotest.test_case "TA007 unreachable location" `Quick test_ta007_unreachable_location;
          Alcotest.test_case "TA008 unsat guard" `Quick test_ta008_unsat_guard;
          Alcotest.test_case "TA008 unproducible guard" `Quick test_ta008_unproducible_guard;
          Alcotest.test_case "TA009 unused shared" `Quick test_ta009_unused_shared;
          Alcotest.test_case "TA010 atom budget" `Quick test_ta010_atom_budget;
          Alcotest.test_case "TA011 spec unknown name" `Quick test_ta011_spec_unknown_name;
          Alcotest.test_case "TA012 irrefutable safety" `Quick test_ta012_irrefutable_safety;
          Alcotest.test_case "TA013 liveness never_enter" `Quick test_ta013_liveness_never_enter;
          Alcotest.test_case "TA014 non-absorbing target" `Quick test_ta014_non_absorbing_target;
          Alcotest.test_case "TA015 justice assumption" `Quick test_ta015_justice_assumption;
          Alcotest.test_case "paper models lint clean" `Quick test_paper_models_clean;
          Alcotest.test_case "json rendering" `Quick test_json;
        ] );
      ( "find_rule",
        [ Alcotest.test_case "named Invalid_argument" `Quick test_find_rule ] );
      ( "slicing",
        [
          Alcotest.test_case "identity on clean models" `Quick test_slice_identity;
          Alcotest.test_case "verify --slice bit-identical (bv)" `Quick test_slice_verify_bv;
          Alcotest.test_case "mutant slices back to pristine" `Quick
            test_slice_mutant_restores_pristine;
          Alcotest.test_case "mutant schema counts shrink" `Quick
            test_slice_mutant_schema_counts;
          Alcotest.test_case "mutant full verify (bv)" `Quick test_slice_mutant_verify_bv;
          Alcotest.test_case "witness preserved (broken resilience)" `Quick
            test_slice_preserves_witness;
          Alcotest.test_case "explicit crossval at n=4" `Quick test_slice_explicit_crossval;
          Alcotest.test_case "spec locations kept" `Quick test_slice_keeps_spec_locations;
        ] );
    ]
