(* Tests for the linear-arithmetic solver stack: known systems, sign/
   boundary cases, and property tests that cross-validate the simplex and
   branch-and-bound against brute-force enumeration on a small box. *)

module B = Numbers.Bigint
module Q = Numbers.Rational
module L = Smt.Linexpr
module A = Smt.Atom
module F = Smt.Formula

let v = L.var
let c n = L.const (Q.of_int n)

let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

(* ------------------------------------------------------------------ *)
(* Linexpr.                                                             *)

let test_linexpr_basics () =
  let e = L.of_int_terms [ (2, 0); (3, 1); (-2, 0) ] 5 in
  Alcotest.(check string) "normalized" "3*x1 + 5" (L.to_string e);
  Alcotest.(check bool) "coeff x0 = 0" true (Q.is_zero (L.coeff 0 e));
  Alcotest.(check (list int)) "vars" [ 1 ] (L.vars e);
  let e2 = L.sub e (L.term (Q.of_int 3) 1) in
  Alcotest.(check bool) "const after sub" true (L.is_const e2)

let test_linexpr_eval () =
  let e = L.of_int_terms [ (2, 0); (-1, 1) ] 7 in
  let assign x = if x = 0 then Q.of_int 3 else Q.of_int 4 in
  Alcotest.(check string) "eval" "9" (Q.to_string (L.eval assign e))

let test_linexpr_scale_to_integers () =
  let e = L.of_terms [ (Q.of_ints 1 2, 0); (Q.of_ints 2 3, 1) ] (Q.of_ints 5 6) in
  let e' = L.scale_to_integers e in
  List.iter
    (fun (coef, _) -> Alcotest.(check bool) "integer coeff" true (Q.is_integer coef))
    (L.terms e');
  Alcotest.(check bool) "integer const" true (Q.is_integer (L.constant e'))

let test_linexpr_subst () =
  (* x0 + 2*x1, with x1 := x2 + 1, gives x0 + 2*x2 + 2 *)
  let e = L.of_int_terms [ (1, 0); (2, 1) ] 0 in
  let by = L.of_int_terms [ (1, 2) ] 1 in
  let e' = L.subst 1 by e in
  Alcotest.(check string) "subst" "x0 + 2*x2 + 2" (L.to_string e')

(* ------------------------------------------------------------------ *)
(* Simplex: rational satisfiability.                                    *)

let simplex_sat atoms =
  match Smt.Simplex.solve atoms with
  | Smt.Simplex.Sat model ->
    let assign x = match List.assoc_opt x model with Some q -> q | None -> Q.zero in
    Alcotest.(check bool) "model satisfies atoms" true (List.for_all (A.holds assign) atoms);
    true
  | Smt.Simplex.Unsat -> false
  | Smt.Simplex.Unknown -> Alcotest.fail "unexpected Simplex.Unknown"

let test_simplex_feasible () =
  (* x >= 1, y >= 1, x + y <= 10 *)
  Alcotest.(check bool) "feasible" true
    (simplex_sat [ A.ge (v 0) (c 1); A.ge (v 1) (c 1); A.le (L.add (v 0) (v 1)) (c 10) ])

let test_simplex_infeasible () =
  (* x >= 5, x <= 3 *)
  Alcotest.(check bool) "infeasible" false
    (simplex_sat [ A.ge (v 0) (c 5); A.le (v 0) (c 3) ])

let test_simplex_strict () =
  (* x > 0, x < 1 is rationally feasible *)
  Alcotest.(check bool) "open interval" true
    (simplex_sat [ A.gt (v 0) (c 0); A.lt (v 0) (c 1) ]);
  (* x > 0, x < 0 is not *)
  Alcotest.(check bool) "empty open interval" false
    (simplex_sat [ A.gt (v 0) (c 0); A.lt (v 0) (c 0) ]);
  (* x >= 0 and x <= 0 and x < 0 is not *)
  Alcotest.(check bool) "point vs strict" false
    (simplex_sat [ A.ge (v 0) (c 0); A.lt (v 0) (c 0) ])

let test_simplex_equalities () =
  (* x + y = 4, x - y = 2 has solution x=3,y=1 *)
  Alcotest.(check bool) "equalities" true
    (simplex_sat [ A.eq (L.add (v 0) (v 1)) (c 4); A.eq (L.sub (v 0) (v 1)) (c 2) ]);
  (* inconsistent equalities *)
  Alcotest.(check bool) "inconsistent" false
    (simplex_sat [ A.eq (v 0) (c 1); A.eq (v 0) (c 2) ])

let test_simplex_needs_pivot () =
  (* A system where the initial zero assignment violates basics:
     x + y >= 2, x - y >= 0, x <= 1  =>  x=1, y in [1, 1] *)
  Alcotest.(check bool) "pivoting" true
    (simplex_sat
       [ A.ge (L.add (v 0) (v 1)) (c 2); A.ge (L.sub (v 0) (v 1)) (c 0); A.le (v 0) (c 1) ])

let test_simplex_degenerate () =
  (* Shared linear part with different bounds: x+y <= 3 and x+y >= 3. *)
  Alcotest.(check bool) "tight" true
    (simplex_sat [ A.le (L.add (v 0) (v 1)) (c 3); A.ge (L.add (v 0) (v 1)) (c 3) ]);
  Alcotest.(check bool) "crossing" false
    (simplex_sat [ A.le (L.add (v 0) (v 1)) (c 3); A.ge (L.add (v 0) (v 1)) (c 4) ])

let test_simplex_trivial_atoms () =
  Alcotest.(check bool) "0 <= 1" true (simplex_sat [ A.le (c 0) (c 1) ]);
  Alcotest.(check bool) "1 <= 0" false (simplex_sat [ A.le (c 1) (c 0) ]);
  Alcotest.(check bool) "empty" true (simplex_sat [])

(* ------------------------------------------------------------------ *)
(* LIA: integer satisfiability.                                         *)

let lia_result atoms =
  match Smt.Lia.solve atoms with
  | Smt.Lia.Sat model ->
    Alcotest.(check bool) "model satisfies atoms" true (Smt.Lia.check_model atoms model);
    `Sat
  | Smt.Lia.Unsat -> `Unsat
  | Smt.Lia.Unknown | Smt.Lia.Timeout -> `Unknown

let test_lia_gap () =
  (* 2x = 1 has no integer solution but a rational one. *)
  Alcotest.(check bool) "2x=1" true (`Unsat = lia_result [ A.eq (L.scale (Q.of_int 2) (v 0)) (c 1) ]);
  (* 0 < x < 1 has no integer solution *)
  Alcotest.(check bool) "open unit interval" true
    (`Unsat = lia_result [ A.gt (v 0) (c 0); A.lt (v 0) (c 1) ]);
  (* 3x + 3y = 2 infeasible mod 3 *)
  Alcotest.(check bool) "mod gap" true
    (`Unsat
    = lia_result [ A.eq (L.add (L.scale (Q.of_int 3) (v 0)) (L.scale (Q.of_int 3) (v 1))) (c 2) ])

let test_lia_feasible () =
  Alcotest.(check bool) "x in [2,2]" true
    (`Sat = lia_result [ A.ge (v 0) (c 2); A.le (v 0) (c 2) ]);
  (* 2x + 3y = 7, x,y >= 0: (2,1) works *)
  Alcotest.(check bool) "diophantine" true
    (`Sat
    = lia_result
        [ A.eq (L.of_int_terms [ (2, 0); (3, 1) ] 0) (c 7);
          A.ge (v 0) (c 0); A.ge (v 1) (c 0) ])

let test_lia_rational_coeffs () =
  (* x/2 >= 1/3 over integers means x >= 1 *)
  let atoms = [ A.ge (L.term (Q.of_ints 1 2) 0) (L.const (Q.of_ints 1 3)); A.le (v 0) (c 0) ] in
  Alcotest.(check bool) "scaled strictness" true (`Unsat = lia_result atoms)

let test_lia_resilience_shape () =
  (* The recurring shape of the checker's queries:
     n > 3t, t >= f >= 0, and counters summing to n - f. *)
  let n = 0 and t = 1 and f = 2 and k0 = 3 and k1 = 4 in
  let base =
    [ A.gt (v n) (L.scale (Q.of_int 3) (v t));
      A.ge (v t) (v f); A.ge (v f) (c 0);
      A.ge (v k0) (c 0); A.ge (v k1) (c 0);
      A.eq (L.add (v k0) (v k1)) (L.sub (v n) (v f)) ]
  in
  Alcotest.(check bool) "base is sat" true (`Sat = lia_result base);
  (* Adding k0 >= n and k1 >= 1 forces f < 0: unsat. *)
  Alcotest.(check bool) "pigeonhole unsat" true
    (`Unsat = lia_result (A.ge (v k0) (v n) :: A.ge (v k1) (c 1) :: base))

let test_lia_budget_unknown () =
  (* A zero budget must surface as Unknown, never as a wrong verdict. *)
  let atoms = [ A.ge (v 0) (c 1); A.le (v 0) (c 5) ] in
  Alcotest.(check bool) "unknown on empty budget" true
    (Smt.Lia.solve ~max_steps:0 atoms = Smt.Lia.Unknown)

let test_simplex_delta_exposed () =
  (* x > 1/2 with x < 1: the delta-rational witness has a nonzero
     infinitesimal part, and concretization still lands strictly
     inside. *)
  let atoms = [ A.gt (v 0) (L.const (Q.of_ints 1 2)); A.lt (v 0) (c 1) ] in
  match Smt.Simplex.solve_delta atoms with
  | None -> Alcotest.fail "expected rational feasibility"
  | Some deltas ->
    Alcotest.(check int) "one variable" 1 (List.length deltas);
    (match Smt.Simplex.solve atoms with
     | Smt.Simplex.Sat [ (0, q) ] ->
       Alcotest.(check bool) "strictly inside" true
         (Q.compare q (Q.of_ints 1 2) > 0 && Q.compare q Q.one < 0)
     | _ -> Alcotest.fail "expected a model for variable 0")

(* ------------------------------------------------------------------ *)
(* Brute-force cross-validation.                                        *)

(* Random atoms over 3 variables with coefficients in [-3,3] and
   constants in [-6,6]; brute force over the box [0,6]^3 versus LIA
   restricted to the same box. *)
let arb_atom =
  QCheck.map
    (fun (c0, c1, c2, k, rel) ->
      let expr = L.of_int_terms [ (c0, 0); (c1, 1); (c2, 2) ] k in
      let rel = match rel mod 3 with 0 -> A.Le | 1 -> A.Lt | _ -> A.Eq in
      { A.expr; rel })
    QCheck.(
      tup5 (int_range (-3) 3) (int_range (-3) 3) (int_range (-3) 3) (int_range (-6) 6)
        (int_range 0 2))

let box_atoms =
  List.concat_map
    (fun x -> [ A.ge (v x) (c 0); A.le (v x) (c 6) ])
    [ 0; 1; 2 ]

let brute_force_sat atoms =
  let found = ref false in
  for x = 0 to 6 do
    for y = 0 to 6 do
      for z = 0 to 6 do
        if not !found then begin
          let assign i =
            Q.of_int (match i with 0 -> x | 1 -> y | 2 -> z | _ -> 0)
          in
          if List.for_all (A.holds assign) atoms then found := true
        end
      done
    done
  done;
  !found

let smt_props =
  [
    prop "lia agrees with brute force on a box" 300 QCheck.(list_of_size (Gen.int_range 1 4) arb_atom)
      (fun atoms ->
        let all = atoms @ box_atoms in
        let expected = brute_force_sat all in
        match Smt.Lia.solve all with
        | Smt.Lia.Sat model -> expected && Smt.Lia.check_model all model
        | Smt.Lia.Unsat -> not expected
        | Smt.Lia.Unknown | Smt.Lia.Timeout -> false);
    prop "simplex models satisfy their atoms" 300 QCheck.(list_of_size (Gen.int_range 1 4) arb_atom)
      (fun atoms ->
        let all = atoms @ box_atoms in
        match Smt.Simplex.solve all with
        | Smt.Simplex.Sat model ->
          let assign x = match List.assoc_opt x model with Some q -> q | None -> Q.zero in
          List.for_all (A.holds assign) all
        | Smt.Simplex.Unsat ->
          (* Rational unsat must imply integer unsat. *)
          not (brute_force_sat all)
        | Smt.Simplex.Unknown -> false);
  ]

(* ------------------------------------------------------------------ *)
(* Atom canonicalization (GCD-normalized equality) and hashing.         *)

let test_atom_canonical_equal () =
  let a = { A.expr = L.of_int_terms [ (2, 0); (4, 1) ] 6; rel = A.Le } in
  let b = { A.expr = L.of_int_terms [ (1, 0); (2, 1) ] 3; rel = A.Le } in
  Alcotest.(check bool) "gcd-normalized atoms equal" true (A.equal a b);
  Alcotest.(check int) "hashes agree" (A.hash a) (A.hash b);
  Alcotest.(check int) "compare is zero" 0 (A.compare a b);
  let half = { A.expr = L.of_terms [ (Q.of_ints 1 2, 0) ] (Q.of_ints 1 2); rel = A.Le } in
  let unit = { A.expr = L.of_int_terms [ (1, 0) ] 1; rel = A.Le } in
  Alcotest.(check bool) "rational scaling normalized" true (A.equal half unit);
  let eq_neg = { A.expr = L.of_int_terms [ (-3, 0) ] 3; rel = A.Eq } in
  let eq_pos = { A.expr = L.of_int_terms [ (1, 0) ] (-1); rel = A.Eq } in
  Alcotest.(check bool) "equality sign normalized" true (A.equal eq_neg eq_pos);
  (* 2x + 1 <= 0 is NOT x + 1 <= 0: the gcd of {2, 1} is 1. *)
  let odd = { A.expr = L.of_int_terms [ (2, 0) ] 1; rel = A.Le } in
  Alcotest.(check bool) "distinct atoms stay distinct" false (A.equal odd unit);
  (* Le must not be sign-normalized: x <= 0 and -x <= 0 differ. *)
  let le = { A.expr = L.of_int_terms [ (1, 0) ] 0; rel = A.Le } in
  let ge = { A.expr = L.of_int_terms [ (-1, 0) ] 0; rel = A.Le } in
  Alcotest.(check bool) "le keeps its sign" false (A.equal le ge)

(* ------------------------------------------------------------------ *)
(* Discharge-cache fingerprint canonicality (Smt.Qcache).  The cache key
   must be a pure function of the query's canonical atom set: permuting
   the atom list, positively rescaling any atom, and injecting duplicate
   atoms must all map to the same key (and the same canonical atom
   list), while queries with different canonical sets must separate.    *)

let qcache_props =
  let arb_query = QCheck.(list_of_size (Gen.int_range 1 6) arb_atom) in
  [
    prop "fingerprint invariant under permutation/rescaling/duplication" 500
      QCheck.(pair arb_query small_nat)
      (fun (atoms, seed) ->
        let key, catoms = Smt.Qcache.fingerprint atoms in
        (* Deterministic scramble from the seed: rescale every atom by a
           positive factor, duplicate one atom, then shuffle. *)
        let st = Random.State.make [| seed |] in
        let rescaled =
          List.map
            (fun a ->
              let m = Q.of_int (1 + Random.State.int st 7) in
              { a with A.expr = L.scale m a.A.expr })
            atoms
        in
        let doubled = List.nth rescaled (Random.State.int st (List.length rescaled)) :: rescaled in
        let shuffled =
          List.map snd
            (List.sort compare
               (List.map (fun a -> (Random.State.bits st, a)) doubled))
        in
        let key', catoms' = Smt.Qcache.fingerprint shuffled in
        String.equal key key' && List.equal A.equal_canonical catoms catoms');
    prop "fingerprint separates queries with distinct canonical sets" 500
      QCheck.(pair arb_query arb_query)
      (fun (q1, q2) ->
        let key1, catoms1 = Smt.Qcache.fingerprint q1 in
        let key2, catoms2 = Smt.Qcache.fingerprint q2 in
        if List.equal A.equal_canonical catoms1 catoms2 then String.equal key1 key2
        else not (String.equal key1 key2));
    prop "compare_canonical agrees with compare on canonical atoms" 500
      QCheck.(pair arb_atom arb_atom)
      (fun (a, b) ->
        let ca = A.canonical a and cb = A.canonical b in
        Stdlib.compare (A.compare_canonical ca cb) 0
        = Stdlib.compare (A.compare ca cb) 0
        && A.equal_canonical ca cb = A.equal a b);
  ]

(* ------------------------------------------------------------------ *)
(* The incremental assertion stack (Lia session over Simplex.Session).  *)

let is_sat = function Smt.Lia.Sat _ -> true | _ -> false

let test_lia_session_push_pop () =
  let s = Smt.Lia.create () in
  Smt.Lia.assert_atoms s
    [ A.ge (v 0) (c 1); A.ge (v 1) (c 1); A.le (L.add (v 0) (v 1)) (c 10) ];
  Alcotest.(check bool) "base sat" true (is_sat (Smt.Lia.check s));
  Smt.Lia.push s;
  Smt.Lia.assert_atoms s [ A.le (L.add (v 0) (v 1)) (c 1) ];
  Alcotest.(check bool) "tightened unsat" true (Smt.Lia.check s = Smt.Lia.Unsat);
  Smt.Lia.pop s;
  Alcotest.(check bool) "sat restored by pop" true (is_sat (Smt.Lia.check s));
  Smt.Lia.push s;
  Smt.Lia.assert_atoms s [ A.ge (v 0) (c 6); A.ge (v 1) (c 6) ];
  Alcotest.(check bool) "sum bound unsat" true (Smt.Lia.check s = Smt.Lia.Unsat);
  Smt.Lia.pop s;
  Smt.Lia.push s;
  (* 2x = 1: infeasible over the integers at assert time (GCD
     tightening), so the check must cost zero simplex steps. *)
  let steps = ref 0 in
  Smt.Lia.assert_atoms s [ { A.expr = L.of_int_terms [ (2, 0) ] (-1); rel = A.Eq } ];
  Alcotest.(check bool) "divisibility unsat" true
    (Smt.Lia.check ~steps s = Smt.Lia.Unsat);
  Alcotest.(check int) "unsat for free" 0 !steps;
  Smt.Lia.pop s;
  Alcotest.(check bool) "sat after deep pops" true (is_sat (Smt.Lia.check s))

let test_lia_session_model_cache () =
  let s = Smt.Lia.create () in
  let hits = ref 0 in
  Smt.Lia.assert_atoms s [ A.ge (v 0) (c 0) ];
  Alcotest.(check bool) "first check solves" true (is_sat (Smt.Lia.check ~hits s));
  Alcotest.(check int) "no hit on first check" 0 !hits;
  Smt.Lia.push s;
  let steps = ref 0 in
  Smt.Lia.assert_atoms s [ A.ge (v 1) (c 0) ];
  Alcotest.(check bool) "extended still sat" true (is_sat (Smt.Lia.check ~hits ~steps s));
  Alcotest.(check int) "cached model reused" 1 !hits;
  Alcotest.(check int) "hit costs no steps" 0 !steps

(* The assert-time interval propagation behind [check_quick]: bound
   chains refute the conjunction with zero simplex work, and the trail
   restores the store on pop.  The pattern mirrors the prefixes the
   incremental checker prunes: a variable pinned to zero bounds another
   from above, against a positive threshold. *)
let test_lia_session_check_quick () =
  let s = Smt.Lia.create () in
  let hits = ref 0 in
  Smt.Lia.assert_atoms s
    [ A.eq (v 0) (c 0); A.le (v 1) (v 0); A.ge (v 1) (c 0) ];
  Alcotest.(check bool) "open prefix undecided" true
    (Smt.Lia.check_quick ~hits s = Smt.Lia.Unknown);
  Alcotest.(check int) "no hit while undecided" 0 !hits;
  Smt.Lia.push s;
  Smt.Lia.assert_atoms s [ A.ge (v 1) (c 1) ];
  Alcotest.(check bool) "threshold against pinned zero refuted" true
    (Smt.Lia.check_quick ~hits s = Smt.Lia.Unsat);
  Alcotest.(check int) "refutation counts as a hit" 1 !hits;
  (* The full check agrees, still without simplex steps. *)
  let steps = ref 0 in
  Alcotest.(check bool) "check agrees" true (Smt.Lia.check ~steps s = Smt.Lia.Unsat);
  Alcotest.(check int) "refuted for free" 0 !steps;
  Smt.Lia.pop s;
  Alcotest.(check bool) "pop restores the bound store" true
    (is_sat (Smt.Lia.check s));
  (* A three-step chain: x2 <= x1 <= x0 = 0 against x2 >= 5, refuted
     across separate assertions (the fixpoint pass re-propagates the
     already-asserted chain). *)
  Smt.Lia.push s;
  Smt.Lia.assert_atoms s [ A.le (v 2) (v 1) ];
  Smt.Lia.assert_atoms s [ A.ge (v 2) (c 5) ];
  Alcotest.(check bool) "chained bound conflict refuted" true
    (Smt.Lia.check_quick s = Smt.Lia.Unsat);
  Smt.Lia.pop s;
  Alcotest.(check bool) "chain retracted" true (is_sat (Smt.Lia.check s))

let session_props =
  [
    prop "session agrees with flat solve across push/pop" 200
      QCheck.(
        pair (list_of_size (Gen.int_range 1 4) arb_atom)
          (list_of_size (Gen.int_range 0 3) arb_atom))
      (fun (base, extra) ->
        let s = Smt.Lia.create () in
        let base = base @ box_atoms in
        Smt.Lia.assert_atoms s base;
        let agree asserted =
          match (Smt.Lia.check s, Smt.Lia.solve asserted) with
          | Smt.Lia.Sat m, Smt.Lia.Sat _ -> Smt.Lia.check_model asserted m
          | Smt.Lia.Unsat, Smt.Lia.Unsat -> true
          | Smt.Lia.Unknown, _ | _, Smt.Lia.Unknown -> true
          | _ -> false
        in
        agree base
        && begin
          Smt.Lia.push s;
          Smt.Lia.assert_atoms s extra;
          let ok = agree (extra @ base) in
          Smt.Lia.pop s;
          ok
        end
        && agree base);
  ]

(* ------------------------------------------------------------------ *)
(* Formula and DNF.                                                     *)

let test_formula_smart_constructors () =
  Alcotest.(check bool) "conj []" true (F.conj [] = F.True);
  Alcotest.(check bool) "disj []" true (F.disj [] = F.False);
  Alcotest.(check bool) "conj false" true (F.conj [ F.tt; F.ff ] = F.False);
  Alcotest.(check bool) "disj true" true (F.disj [ F.ff; F.tt ] = F.True);
  Alcotest.(check bool) "double neg" true (F.not_ (F.not_ (F.atom (A.le (v 0) (c 1)))) = F.atom (A.le (v 0) (c 1)))

let test_formula_eval () =
  let f =
    F.conj [ F.atom (A.ge (v 0) (c 1)); F.disj [ F.atom (A.le (v 1) (c 0)); F.atom (A.ge (v 1) (c 5)) ] ]
  in
  let assign a b x = Q.of_int (if x = 0 then a else b) in
  Alcotest.(check bool) "1,0 sat" true (F.eval (assign 1 0) f);
  Alcotest.(check bool) "1,5 sat" true (F.eval (assign 1 5) f);
  Alcotest.(check bool) "1,3 unsat" false (F.eval (assign 1 3) f);
  Alcotest.(check bool) "0,0 unsat" false (F.eval (assign 0 0) f)

let test_dnf_equivalence () =
  let f =
    F.not_
      (F.disj
         [ F.atom (A.ge (v 0) (c 1));
           F.conj [ F.atom (A.le (v 1) (c 2)); F.atom (A.eq (v 0) (c 0)) ] ])
  in
  let cubes = F.dnf f in
  (* DNF must agree with the original formula on a grid. *)
  for a = -2 to 2 do
    for b = 0 to 4 do
      let assign x = Q.of_int (if x = 0 then a else b) in
      let original = F.eval assign f in
      let via_dnf = List.exists (fun cube -> List.for_all (A.holds assign) cube) cubes in
      Alcotest.(check bool) (Printf.sprintf "dnf at (%d,%d)" a b) original via_dnf
    done
  done

(* ------------------------------------------------------------------ *)
(* SAT.                                                                 *)

let test_sat_basic () =
  Alcotest.(check bool) "unit" true (match Smt.Sat.solve [ [ 1 ] ] with Smt.Sat.Sat f -> f 1 | _ -> false);
  Alcotest.(check bool) "conflict" true (Smt.Sat.solve [ [ 1 ]; [ -1 ] ] = Smt.Sat.Unsat);
  Alcotest.(check bool) "empty clause" true (Smt.Sat.solve [ [] ] = Smt.Sat.Unsat);
  Alcotest.(check bool) "no clauses" true (match Smt.Sat.solve [] with Smt.Sat.Sat _ -> true | _ -> false)

let test_sat_pigeonhole () =
  (* 3 pigeons, 2 holes: unsat.  Var (p,h) = p*2 + h + 1. *)
  let var p h = (p * 2) + h + 1 in
  let at_least = List.init 3 (fun p -> [ var p 0; var p 1 ]) in
  let at_most =
    List.concat_map
      (fun h ->
        [ [ -var 0 h; -var 1 h ]; [ -var 0 h; -var 2 h ]; [ -var 1 h; -var 2 h ] ])
      [ 0; 1 ]
  in
  Alcotest.(check bool) "php(3,2)" true (Smt.Sat.solve (at_least @ at_most) = Smt.Sat.Unsat)

let test_sat_solve_all () =
  (* x1 xor x2 has exactly two models. *)
  let clauses = [ [ 1; 2 ]; [ -1; -2 ] ] in
  let models = Smt.Sat.solve_all clauses |> List.sort_uniq compare in
  Alcotest.(check (list (list int))) "two models" [ [ 1 ]; [ 2 ] ] models

let sat_brute_force clauses nvars =
  let rec go assignment v =
    if v > nvars then
      List.for_all (List.exists (fun l -> List.mem l assignment)) clauses
    else go (v :: assignment) (v + 1) || go (-v :: assignment) (v + 1)
  in
  go [] 1

let arb_cnf =
  let lit = QCheck.map (fun (v, s) -> if s then v else -v) QCheck.(pair (int_range 1 4) bool) in
  QCheck.(list_of_size (Gen.int_range 1 8) (list_of_size (Gen.int_range 1 3) lit))

let sat_props =
  [
    prop "dpll agrees with brute force" 300 arb_cnf (fun clauses ->
        let expected = sat_brute_force clauses 4 in
        match Smt.Sat.solve clauses with
        | Smt.Sat.Sat assign ->
          expected
          && List.for_all (List.exists (fun l -> if l > 0 then assign l else not (assign (-l)))) clauses
        | Smt.Sat.Unsat -> not expected);
  ]

(* ------------------------------------------------------------------ *)
(* DPLL(T) solver.                                                      *)

let test_solver_combined () =
  (* (x >= 3 \/ x <= -3) /\ x >= 0 /\ x <= 10: model must have x >= 3. *)
  let f =
    F.conj
      [ F.disj [ F.atom (A.ge (v 0) (c 3)); F.atom (A.le (v 0) (c (-3))) ];
        F.atom (A.ge (v 0) (c 0)); F.atom (A.le (v 0) (c 10)) ]
  in
  (match Smt.Solver.solve f with
   | Smt.Solver.Sat model ->
     let x = List.assoc 0 model in
     Alcotest.(check bool) "x >= 3" true (B.compare x (B.of_int 3) >= 0)
   | _ -> Alcotest.fail "expected sat");
  (* x = 0 /\ (x >= 1 \/ x <= -1): unsat *)
  let g =
    F.conj
      [ F.atom (A.eq (v 0) (c 0));
        F.disj [ F.atom (A.ge (v 0) (c 1)); F.atom (A.le (v 0) (c (-1))) ] ]
  in
  Alcotest.(check bool) "unsat" true (Smt.Solver.solve g = Smt.Solver.Unsat)

let test_solver_negated_eq () =
  (* not (x = 0) /\ 0 <= x <= 1 forces x = 1. *)
  let f =
    F.conj
      [ F.not_ (F.atom (A.eq (v 0) (c 0)));
        F.atom (A.ge (v 0) (c 0)); F.atom (A.le (v 0) (c 1)) ]
  in
  match Smt.Solver.solve f with
  | Smt.Solver.Sat model ->
    Alcotest.(check string) "x = 1" "1" (B.to_string (List.assoc 0 model))
  | _ -> Alcotest.fail "expected sat"

let solver_props =
  [
    prop "solver agrees with brute force on conj/disj" 150
      QCheck.(pair (list_of_size (Gen.int_range 1 3) arb_atom) (list_of_size (Gen.int_range 1 3) arb_atom))
      (fun (cube1, cube2) ->
        let f =
          F.conj
            (F.disj
               [ F.conj (List.map F.atom cube1); F.conj (List.map F.atom cube2) ]
            :: List.map F.atom box_atoms)
        in
        let expected = brute_force_sat (cube1 @ box_atoms) || brute_force_sat (cube2 @ box_atoms) in
        match Smt.Solver.solve f with
        | Smt.Solver.Sat model ->
          let assign x =
            match List.assoc_opt x model with Some b -> Q.of_bigint b | None -> Q.zero
          in
          expected && F.eval assign f
        | Smt.Solver.Unsat -> not expected
        | Smt.Solver.Unknown -> false);
  ]

let () =
  Alcotest.run "smt"
    [
      ( "linexpr",
        [
          Alcotest.test_case "basics" `Quick test_linexpr_basics;
          Alcotest.test_case "eval" `Quick test_linexpr_eval;
          Alcotest.test_case "scale_to_integers" `Quick test_linexpr_scale_to_integers;
          Alcotest.test_case "subst" `Quick test_linexpr_subst;
        ] );
      ( "simplex",
        [
          Alcotest.test_case "feasible" `Quick test_simplex_feasible;
          Alcotest.test_case "infeasible" `Quick test_simplex_infeasible;
          Alcotest.test_case "strict bounds" `Quick test_simplex_strict;
          Alcotest.test_case "equalities" `Quick test_simplex_equalities;
          Alcotest.test_case "pivoting required" `Quick test_simplex_needs_pivot;
          Alcotest.test_case "degenerate bounds" `Quick test_simplex_degenerate;
          Alcotest.test_case "trivial atoms" `Quick test_simplex_trivial_atoms;
        ] );
      ( "lia",
        [
          Alcotest.test_case "integrality gaps" `Quick test_lia_gap;
          Alcotest.test_case "feasible systems" `Quick test_lia_feasible;
          Alcotest.test_case "rational coefficients" `Quick test_lia_rational_coeffs;
          Alcotest.test_case "resilience-shaped query" `Quick test_lia_resilience_shape;
          Alcotest.test_case "budget exhaustion is Unknown" `Quick test_lia_budget_unknown;
          Alcotest.test_case "delta-rational witnesses" `Quick test_simplex_delta_exposed;
        ] );
      ("smt-props", smt_props);
      ( "atom-canonical",
        [ Alcotest.test_case "gcd equality and hash" `Quick test_atom_canonical_equal ] );
      ("qcache-fingerprint", qcache_props);
      ( "lia-session",
        [
          Alcotest.test_case "push/pop assertion stack" `Quick test_lia_session_push_pop;
          Alcotest.test_case "prefix model cache" `Quick test_lia_session_model_cache;
          Alcotest.test_case "interval propagation / check_quick" `Quick
            test_lia_session_check_quick;
        ] );
      ("lia-session-props", session_props);
      ( "formula",
        [
          Alcotest.test_case "smart constructors" `Quick test_formula_smart_constructors;
          Alcotest.test_case "eval" `Quick test_formula_eval;
          Alcotest.test_case "dnf equivalence" `Quick test_dnf_equivalence;
        ] );
      ( "sat",
        [
          Alcotest.test_case "basics" `Quick test_sat_basic;
          Alcotest.test_case "pigeonhole" `Quick test_sat_pigeonhole;
          Alcotest.test_case "solve_all" `Quick test_sat_solve_all;
        ] );
      ("sat-props", sat_props);
      ( "solver",
        [
          Alcotest.test_case "combined theory+bool" `Quick test_solver_combined;
          Alcotest.test_case "negated equality" `Quick test_solver_negated_eq;
        ] );
      ("solver-props", solver_props);
    ]
