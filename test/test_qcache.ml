(* The two-level discharge cache and the racing backend portfolio
   (Smt.Qcache / Smt.Portfolio / Holistic.Cachefile):

   - cached-vs-uncached equivalence: all four engines (flat/incremental
     x sequential/parallel) on every bundled bv property, and the two
     sequential engines on random DAG automata, must report the same
     outcome (witness included), schema count and slot total with a
     portfolio as without one;
   - warm-rerun determinism: a violated property re-verified against
     the populated cache reproduces the byte-identical witness, from
     cache hits;
   - persistence: save -> load roundtrips every certified entry, and a
     warm run from the loaded cache answers every leaf from it at zero
     solver steps;
   - the poisoned-cache trust model: corrupting a persisted entry's
     certificate makes the loader drop that entry (silently, counted),
     and the verdict of a run against the poisoned cache is unchanged. *)

module A = Ta.Automaton
module G = Ta.Guard
module P = Ta.Pexpr
module C = Ta.Cond
module S = Ta.Spec
module Ck = Holistic.Checker
module J = Jsonc

let limits ?(max_schemas = 100_000) ?(jobs = 1) ?(incremental = true)
    ?(static = true) () =
  { Ck.default_limits with max_schemas; jobs; incremental; static }

let outcome_repr = function
  | Ck.Holds -> "holds"
  | Ck.Violated w -> Format.asprintf "violated@\n%a" Holistic.Witness.pp w
  | Ck.Aborted reason -> "aborted: " ^ reason
  | Ck.Partial { quarantined; reason } ->
    Format.asprintf "partial (%d quarantined): %s" (List.length quarantined) reason

let with_temp_file f =
  let path = Filename.temp_file "holistic_qcache" ".json" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

(* ------------------------------------------------------------------ *)
(* Four-engine equivalence on the bundled bv model.  One portfolio
   (with cross-checking on) is shared across every property and engine,
   so later runs also exercise warm hits and cross-property reuse.      *)

let test_bv_four_engines () =
  let portfolio = Smt.Portfolio.create ~check:true (Smt.Qcache.create ()) in
  let u = Holistic.Universe.build Models.Bv_ta.automaton in
  List.iter
    (fun spec ->
      List.iter
        (fun (incremental, jobs) ->
          let limits = limits ~jobs ~incremental () in
          let label =
            Printf.sprintf "%s inc=%b jobs=%d" spec.S.name incremental jobs
          in
          let plain = Ck.verify_with_universe ~limits u spec in
          let cached = Ck.verify_with_universe ~limits ~portfolio u spec in
          Alcotest.(check string)
            (label ^ " outcome")
            (outcome_repr plain.Ck.outcome)
            (outcome_repr cached.Ck.outcome);
          Alcotest.(check int)
            (label ^ " schemas") plain.Ck.stats.schemas_checked
            cached.Ck.stats.schemas_checked;
          Alcotest.(check int)
            (label ^ " slots") plain.Ck.stats.slots_total
            cached.Ck.stats.slots_total)
        [ (false, 1); (false, 2); (true, 1); (true, 2) ])
    Models.Bv_ta.table2_specs

(* ------------------------------------------------------------------ *)
(* Warm-rerun witness determinism on the broken-resilience
   counterexample: the cold run caches the deciding SAT query's literal
   model, so the warm rerun reproduces the byte-identical witness —
   and actually from the cache.                                         *)

let test_warm_witness_determinism () =
  let portfolio = Smt.Portfolio.create (Smt.Qcache.create ()) in
  let ta = Models.Simplified_ta.automaton_broken_resilience in
  let spec = Models.Simplified_ta.inv1_0 in
  let plain = Ck.verify ~limits:(limits ()) ta spec in
  let cold = Ck.verify ~limits:(limits ()) ~portfolio ta spec in
  let warm = Ck.verify ~limits:(limits ()) ~portfolio ta spec in
  (match plain.Ck.outcome with
   | Ck.Violated _ -> ()
   | o -> Alcotest.failf "expected a counterexample, got %s" (outcome_repr o));
  Alcotest.(check string) "cold witness matches uncached"
    (outcome_repr plain.Ck.outcome) (outcome_repr cold.Ck.outcome);
  Alcotest.(check string) "warm witness is byte-identical"
    (outcome_repr plain.Ck.outcome) (outcome_repr warm.Ck.outcome);
  Alcotest.(check bool) "warm run actually hit the cache" true
    (warm.Ck.stats.cache.Smt.Portfolio.hits > 0)

(* ------------------------------------------------------------------ *)
(* Persistence roundtrip and the poisoned cache.  The flat sequential
   engine discharges every schema as a leaf, so a fully-warm run needs
   no solver steps at all.                                              *)

let set_cert cert = function
  | J.Obj fields ->
    J.Obj (List.map (fun (k, v) -> if k = "cert" then (k, cert) else (k, v)) fields)
  | j -> j

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let test_persistence_and_poison () =
  let cache = Smt.Qcache.create () in
  let portfolio = Smt.Portfolio.create cache in
  let u = Holistic.Universe.build Models.Bv_ta.automaton in
  (* BV-Obl0 with static discharge off: every one of the 19 schemas is
     then a genuine leaf discharge, so the cold run populates one cache
     entry per schema (BV-Just0 would be fully statically refuted and
     leave the cache empty). *)
  let spec = List.nth Models.Bv_ta.table2_specs 1 in
  let limits = limits ~incremental:false ~static:false () in
  let plain = Ck.verify_with_universe ~limits u spec in
  let _cold = Ck.verify_with_universe ~limits ~portfolio u spec in
  with_temp_file (fun path ->
      let sr = Holistic.Cachefile.save ~path cache in
      Alcotest.(check bool) "entries written" true (sr.Holistic.Cachefile.written >= 3);
      Alcotest.(check int) "every entry certified" 0 sr.Holistic.Cachefile.uncertified;
      (* Clean roundtrip: everything loads, nothing is dropped, and a
         warm run from the loaded cache needs zero solver steps. *)
      let lr = Holistic.Cachefile.load ~path in
      Alcotest.(check int) "all entries loaded" sr.Holistic.Cachefile.written
        lr.Holistic.Cachefile.loaded;
      Alcotest.(check int) "no entries dropped" 0 lr.Holistic.Cachefile.dropped;
      let warm =
        Ck.verify_with_universe ~limits
          ~portfolio:(Smt.Portfolio.create lr.Holistic.Cachefile.cache)
          u spec
      in
      Alcotest.(check string) "warm verdict" (outcome_repr plain.Ck.outcome)
        (outcome_repr warm.Ck.outcome);
      Alcotest.(check int) "warm run has no misses" 0
        warm.Ck.stats.cache.Smt.Portfolio.misses;
      Alcotest.(check int) "warm run needs no solver steps" 0
        warm.Ck.stats.solver_steps;
      (* Poison two persisted certificates: one nulled out, one replaced
         with bytes that do not parse as a certificate.  Both entries
         must be dropped by load-time validation; the rest still load,
         and the verdict of a run against the poisoned cache is
         unchanged. *)
      let doc = J.of_string (String.trim (read_file path)) in
      let entries = J.to_list (J.member "entries" doc) in
      let poisoned =
        List.mapi
          (fun i ej ->
            if i = 0 then set_cert J.Null ej
            else if i = 1 then set_cert (J.Str "corrupted-certificate") ej
            else ej)
          entries
      in
      let doc' =
        J.Obj [ ("version", J.Int 1); ("entries", J.List poisoned) ]
      in
      write_file path (J.to_string doc' ^ "\n");
      let lr' = Holistic.Cachefile.load ~path in
      Alcotest.(check int) "poisoned entries dropped" 2 lr'.Holistic.Cachefile.dropped;
      Alcotest.(check int) "intact entries still load"
        (sr.Holistic.Cachefile.written - 2)
        lr'.Holistic.Cachefile.loaded;
      let after =
        Ck.verify_with_universe ~limits
          ~portfolio:(Smt.Portfolio.create lr'.Holistic.Cachefile.cache)
          u spec
      in
      Alcotest.(check string) "verdict unchanged by poisoning"
        (outcome_repr plain.Ck.outcome)
        (outcome_repr after.Ck.outcome);
      Alcotest.(check bool) "dropped entries degrade to misses" true
        (after.Ck.stats.cache.Smt.Portfolio.misses > 0))

(* ------------------------------------------------------------------ *)
(* Random DAG automata (the generator of test_incremental/test_absint):
   cached cold and warm runs agree with the uncached engine — outcome,
   witness, schema count, slot total — on both sequential engines.      *)

let locations = [ "L0"; "L1"; "L2"; "L3" ]

let guard_pool =
  [
    G.tt;
    G.ge1 "x" (P.const 1);
    G.ge1 "x" (P.const 2);
    G.ge1 "y" (P.const 1);
    G.ge [ ("x", 1); ("y", 1) ] (P.const 2);
  ]

let update_pool = [ []; [ ("x", 1) ]; [ ("y", 1) ] ]

type rule_desc = { src : int; dst : int; guard : int; update : int; fair : bool }

let arb_ta =
  let open QCheck in
  let edges =
    List.concat_map
      (fun i -> List.filter_map (fun j -> if j > i then Some (i, j) else None) [ 0; 1; 2; 3 ])
      [ 0; 1; 2 ]
  in
  let arb_desc (src, dst) =
    map
      (fun (present, guard, update, fair) ->
        if present then Some { src; dst; guard; update; fair } else None)
      (tup4 bool
         (int_range 0 (List.length guard_pool - 1))
         (int_range 0 (List.length update_pool - 1))
         bool)
  in
  let rec sequence = function
    | [] -> Gen.return []
    | g :: gs -> Gen.map2 (fun x xs -> x :: xs) g (sequence gs)
  in
  let gens = List.map (fun e -> (arb_desc e).gen) edges in
  make
    ~print:(fun descs ->
      String.concat ";"
        (List.map
           (function
             | None -> "-"
             | Some d ->
               Printf.sprintf "%d->%d g%d u%d %s" d.src d.dst d.guard d.update
                 (if d.fair then "F" else "U"))
           descs))
    (sequence gens)

let build_ta descs =
  let rules =
    List.concat_map
      (function
        | None -> []
        | Some d ->
          [
            A.rule
              (Printf.sprintf "r%d%d" d.src d.dst)
              ~source:(List.nth locations d.src) ~target:(List.nth locations d.dst)
              ~guard:(List.nth guard_pool d.guard)
              ~update:(List.nth update_pool d.update)
              ~fairness:(if d.fair then A.Fair else A.Unfair);
          ])
      descs
  in
  A.make ~name:"random" ~params:[ "n" ] ~shared:[ "x"; "y" ] ~locations
    ~initial:[ "L0"; "L1" ]
    ~resilience:[ P.of_terms [ ("n", 1) ] (-1) ]
    ~population:(P.param "n") ~rules ()

let reach_spec =
  S.invariant ~name:"reach-L3" ~ltl:"<>(k[L3] != 0)"
    ~bad:[ ("L3 reached", C.some_nonempty [ "L3" ]) ]
    ()

let cached_agrees descs =
  let ta = build_ta descs in
  let portfolio = Smt.Portfolio.create ~check:true (Smt.Qcache.create ()) in
  List.for_all
    (fun incremental ->
      let run ?portfolio () =
        Ck.verify ~limits:(limits ~max_schemas:5_000 ~incremental ()) ?portfolio ta
          reach_spec
      in
      let plain = run () in
      (match plain.Ck.outcome with
       | Ck.Aborted _ | Ck.Partial _ -> QCheck.assume_fail ()
       | _ -> ());
      let cold = run ~portfolio () in
      let warm = run ~portfolio () in
      outcome_repr plain.Ck.outcome = outcome_repr cold.Ck.outcome
      && outcome_repr plain.Ck.outcome = outcome_repr warm.Ck.outcome
      && plain.Ck.stats.schemas_checked = cold.Ck.stats.schemas_checked
      && plain.Ck.stats.schemas_checked = warm.Ck.stats.schemas_checked
      && plain.Ck.stats.slots_total = cold.Ck.stats.slots_total
      && plain.Ck.stats.slots_total = warm.Ck.stats.slots_total)
    [ false; true ]

let () =
  Alcotest.run "qcache"
    [
      ( "engines",
        [
          Alcotest.test_case "bv: four engines, cached vs uncached" `Quick
            test_bv_four_engines;
          Alcotest.test_case "warm witness determinism" `Quick
            test_warm_witness_determinism;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "roundtrip and poisoned cache" `Quick
            test_persistence_and_poison;
        ] );
      ( "random-ta",
        [
          QCheck_alcotest.to_alcotest
            (QCheck.Test.make ~name:"cached engines agree on random TAs" ~count:30
               arb_ta cached_agrees);
        ] );
    ]
