(* Certificate tests: unit certificates for known systems, a QCheck
   differential battery (certifying CDCL(T) path vs. the flat LIA path
   vs. Cooper quantifier elimination), guaranteed-invalid certificate
   mutations, JSON round-trips, and unsat-core provenance of the
   incremental session layer. *)

module B = Numbers.Bigint
module Q = Numbers.Rational
module L = Smt.Linexpr
module A = Smt.Atom
module Cert = Smt.Certificate
module Certcheck = Smt.Certcheck
module Lia = Smt.Lia
module P = Presburger

let v = L.var
let c n = L.const (Q.of_int n)

let prop name count arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let validate_ok ?(branches = []) atoms cert =
  match Certcheck.validate_query ~atoms ~branches cert with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "certificate rejected: %s" msg

let validate_rejected ?(branches = []) atoms cert =
  match Certcheck.validate_query ~atoms ~branches cert with
  | Ok () -> Alcotest.fail "mutated certificate accepted"
  | Error _ -> ()

let solve_unsat_cert atoms =
  match Lia.solve_cert atoms with
  | Lia.Cert_unsat cert -> cert
  | Lia.Cert_sat _ -> Alcotest.fail "expected unsat, got a model"
  | Lia.Cert_unknown | Lia.Cert_timeout ->
    Alcotest.fail "expected unsat, got unknown/timeout"

(* ------------------------------------------------------------------ *)
(* Guaranteed-invalid mutations.  Adding 1 to the multiplier of a
   variable-bearing Farkas premise adds that premise's expression to the
   combination, so the variables no longer cancel; a Farkas node with
   only constant premises degenerates to the (rejected) empty
   combination; a divisibility leaf gets its atom's constant shifted so
   it is no longer the normalization of its input.  Each case fails
   validation by construction, independent of the solver. *)
let rec mutate = function
  | Cert.Farkas ps ->
    let has_vars (p : Cert.premise) = L.terms p.Cert.atom.A.expr <> [] in
    if List.exists has_vars ps then begin
      (* Bump exactly one variable-bearing multiplier: the combination
         picks up that premise's expression once, so its variables no
         longer cancel. *)
      let bumped = ref false in
      Cert.Farkas
        (List.map
           (fun (p : Cert.premise) ->
             if has_vars p && not !bumped then begin
               bumped := true;
               { p with Cert.coeff = Q.add p.Cert.coeff Q.one }
             end
             else p)
           ps)
    end
    else Cert.Farkas []
  | Cert.Div_conflict { index; atom } ->
    Cert.Div_conflict
      { index; atom = { atom with A.expr = L.add_const Q.one atom.A.expr } }
  | Cert.Branch b -> Cert.Branch { b with low = mutate b.low }
  | Cert.Split sp -> (
    match sp.certs with
    | [] -> Cert.Split sp
    | c0 :: rest -> Cert.Split { sp with certs = mutate c0 :: rest })
  | Cert.Static c -> Cert.Static (mutate c)

(* ------------------------------------------------------------------ *)
(* Unit certificates.                                                   *)

let test_farkas_simple () =
  (* x >= 5, x <= 3: rational infeasibility, one Farkas leaf. *)
  let atoms = [ A.ge (v 0) (c 5); A.le (v 0) (c 3) ] in
  let cert = solve_unsat_cert atoms in
  validate_ok atoms cert;
  Alcotest.(check int) "leaf count" 1 (Cert.size cert);
  Alcotest.(check (list int)) "core" [ 0; 1 ] (Cert.core cert)

let test_farkas_tightened () =
  (* 2x + 2y >= 1 and 2x + 2y <= 1 tighten to x + y >= 1 and x + y <= 0:
     the certificate premises are the tightened forms, which the checker
     must recognize as derivations of the inputs. *)
  let e = L.add (L.scale (Q.of_int 2) (v 0)) (L.scale (Q.of_int 2) (v 1)) in
  let atoms = [ A.ge e (c 1); A.le e (c 1) ] in
  let cert = solve_unsat_cert atoms in
  validate_ok atoms cert

let test_div_conflict () =
  (* 2x - 2y = 1: gcd 2 does not divide 1. *)
  let atoms = [ A.eq (L.sub (L.scale (Q.of_int 2) (v 0)) (L.scale (Q.of_int 2) (v 1))) (c 1) ] in
  let cert = solve_unsat_cert atoms in
  (match cert with
   | Cert.Div_conflict _ -> ()
   | _ -> Alcotest.fail "expected a divisibility conflict leaf");
  validate_ok atoms cert

let test_trivially_false () =
  let atoms = [ A.le (c 1) (c 0) ] in
  let cert = solve_unsat_cert atoms in
  validate_ok atoms cert

let test_branch () =
  (* 2x + 3y = 1, 0 <= y <= 0: rationally feasible only at x = 1/2, so
     branch-and-bound must split on x. *)
  let atoms =
    [
      A.eq (L.add (L.scale (Q.of_int 2) (v 0)) (L.scale (Q.of_int 3) (v 1))) (c 1);
      A.ge (v 1) (c 0);
      A.le (v 1) (c 0);
    ]
  in
  let cert = solve_unsat_cert atoms in
  (match cert with
   | Cert.Branch _ -> ()
   | _ -> Alcotest.fail "expected a branch certificate");
  validate_ok atoms cert

let test_split () =
  (* Query: x >= 1, and (x <= 0 or x <= -5).  Each cube contradicts the
     conjunction; a Split node combines the per-cube refutations. *)
  let base = [ A.ge (v 0) (c 1) ] in
  let cube1 = [ A.le (v 0) (c 0) ] in
  let cube2 = [ A.le (v 0) (c (-5)) ] in
  let c1 = solve_unsat_cert (base @ cube1) in
  let c2 = solve_unsat_cert (base @ cube2) in
  let split = Cert.Split { cubes = [ cube1; cube2 ]; certs = [ c1; c2 ] } in
  validate_ok ~branches:[ [ cube1; cube2 ] ] base split;
  (* The same certificate must fail without the branch entry, and with
     cubes that do not match the query. *)
  validate_rejected base split;
  validate_rejected ~branches:[ [ cube2; cube1 ] ] base split

let test_sat_model () =
  let atoms = [ A.ge (L.add (v 0) (v 1)) (c 3); A.le (v 0) (c 1) ] in
  match Lia.solve_cert atoms with
  | Lia.Cert_sat m ->
    Alcotest.(check bool) "model satisfies input" true (Lia.check_model atoms m)
  | _ -> Alcotest.fail "expected sat"

let test_json_roundtrip () =
  let atoms =
    [
      A.eq (L.add (L.scale (Q.of_int 2) (v 0)) (L.scale (Q.of_int 3) (v 1))) (c 1);
      A.ge (v 1) (c 0);
      A.le (v 1) (c 0);
    ]
  in
  let cert = solve_unsat_cert atoms in
  let json = Jsonc.to_string (Cert.to_json cert) in
  let cert' = Cert.of_json (Jsonc.of_string json) in
  validate_ok atoms cert';
  Alcotest.(check (list int)) "core preserved" (Cert.core cert) (Cert.core cert');
  Alcotest.(check string) "canonical json stable" json
    (Jsonc.to_string (Cert.to_json cert'))

let test_mutation_unit () =
  let atoms = [ A.ge (v 0) (c 5); A.le (v 0) (c 3) ] in
  let cert = solve_unsat_cert atoms in
  validate_rejected atoms (mutate cert)

(* ------------------------------------------------------------------ *)
(* Simplex conflict explanations (the `Unsat-with-infeasible-set fix). *)

let test_simplex_explanation () =
  let s = Smt.Simplex.Session.create () in
  Smt.Simplex.Session.assert_atom ~tag:7 s (A.ge (v 0) (c 5));
  Smt.Simplex.Session.assert_atom ~tag:9 s (A.le (L.add (v 0) (v 1)) (c 3));
  Smt.Simplex.Session.assert_atom ~tag:11 s (A.ge (v 1) (c 0));
  (match Smt.Simplex.Session.check s with
   | `Sat -> Alcotest.fail "expected rational unsat"
   | `Unsat None -> Alcotest.fail "expected an explanation"
   | `Unsat (Some expl) ->
     let tags = List.map fst expl |> List.sort compare in
     Alcotest.(check (list int)) "conflict cites the infeasible atoms" [ 7; 9; 11 ] tags;
     List.iter
       (fun (_, lam) ->
         Alcotest.(check bool) "positive multiplier" true (Q.sign lam > 0))
       expl);
  Alcotest.(check bool) "sticky" true (Smt.Simplex.Session.is_infeasible s)

let test_simplex_untagged_degrades () =
  let s = Smt.Simplex.Session.create () in
  Smt.Simplex.Session.assert_atom ~tag:0 s (A.ge (v 0) (c 5));
  Smt.Simplex.Session.assert_atom s (A.le (v 0) (c 3));
  match Smt.Simplex.Session.check s with
  | `Unsat None -> ()
  | `Unsat (Some _) -> Alcotest.fail "untagged participant must poison the core"
  | `Sat -> Alcotest.fail "expected unsat"

(* ------------------------------------------------------------------ *)
(* Session unsat cores and depths.                                      *)

let test_session_core_depth () =
  let s = Lia.create () in
  Lia.push s;
  Lia.assert_atoms s [ A.ge (v 0) (c 5) ];
  Lia.push s;
  Lia.assert_atoms s [ A.le (v 0) (c 3) ];
  (match Lia.check_quick s with
   | Lia.Unsat -> ()
   | _ -> Alcotest.fail "expected quick unsat");
  (match Lia.unsat_core s with
   | Some core -> Alcotest.(check (list int)) "core" [ 0; 1 ] (List.sort compare core)
   | None -> Alcotest.fail "expected a core");
  Alcotest.(check (option int)) "conflict involves the newest frame" (Some 2)
    (Lia.unsat_depth s);
  Lia.pop s;
  Alcotest.(check bool) "feasible again after pop" true
    (match Lia.check_quick s with Lia.Unsat -> false | _ -> true)

(* A conjunction whose infeasibility the bounded propagation fixpoint
   cannot reach within one assert batch: the two-variable system
   3x <= 2y, 3y <= 2x + 1 forces the derived lower bounds of x and y to
   climb geometrically (ratio 9/4 per round) while the cap [x <= 10^18]
   descends (ratio 4/9), so the bounds meet after ~26 rounds — more than
   one fixpoint allows.  The conflict is then discovered
   when a later frame's (unrelated) assertion resumes propagation — and
   its core lies entirely in the older frame, which is exactly the
   situation core-guided sibling pruning keys on. *)
let test_session_shallow_core () =
  let s = Lia.create () in
  Lia.push s;
  Lia.assert_atoms s
    [
      A.le (L.scale (Q.of_int 3) (v 0)) (L.scale (Q.of_int 2) (v 1));
      A.le (L.scale (Q.of_int 3) (v 1)) (L.add (L.scale (Q.of_int 2) (v 0)) (c 1));
      A.ge (v 0) (c 1);
      A.le (v 0) (L.const (Q.of_int 1_000_000_000_000_000_000));
    ];
  (match Lia.check_quick s with
   | Lia.Unsat -> Alcotest.fail "conflict found too early: fixpoint cap changed?"
   | _ -> ());
  Lia.push s;
  (* Fresh, satisfiable-by-itself atom on an unrelated variable. *)
  Lia.assert_atoms s [ A.le (v 9) (c 5) ];
  (match Lia.check_quick s with
   | Lia.Unsat -> ()
   | _ -> Alcotest.fail "resumed propagation should refute the old frame");
  (match Lia.unsat_depth s with
   | Some d ->
     Alcotest.(check int) "core omits the newest frame" 1 d;
     Alcotest.(check bool) "strictly shallower than the stack" true (d < 2)
   | None -> Alcotest.fail "expected core provenance");
  Lia.pop s;
  Lia.pop s

(* ------------------------------------------------------------------ *)
(* Differential battery: random LIA conjunctions.                       *)

type rel3 = RLe | RLt | REq

type ratom = { coeffs : int list; k : int; rel : rel3 }

let atom_of_ratom { coeffs; k; rel } =
  let expr = L.of_int_terms (List.mapi (fun i ci -> (ci, i)) coeffs) k in
  match rel with
  | RLe -> { A.expr; rel = A.Le }
  | RLt -> { A.expr; rel = A.Lt }
  | REq -> { A.expr; rel = A.Eq }

let pres_of_ratom { coeffs; k; rel } =
  let term =
    P.Term.of_terms
      (List.mapi (fun i ci -> (ci, Printf.sprintf "x%d" i)) coeffs)
      k
  in
  let zero = P.Term.const 0 in
  match rel with
  | RLe -> P.le term zero
  | RLt -> P.lt term zero
  | REq -> P.eq term zero

let arb_system ?(max_coeff = 3) ~vars ~max_atoms () =
  let open QCheck in
  let gen_atom =
    Gen.map3
      (fun coeffs k r ->
        { coeffs; k; rel = (match r with 0 -> RLe | 1 -> RLt | _ -> REq) })
      (Gen.list_size (Gen.return vars) (Gen.int_range (-max_coeff) max_coeff))
      (Gen.int_range (-4) 4) (Gen.int_range 0 2)
  in
  make
    ~print:(fun atoms ->
      String.concat " /\\ "
        (List.map (fun a -> A.to_string (atom_of_ratom a)) atoms))
    (Gen.list_size (Gen.int_range 1 max_atoms) gen_atom)

(* The certifying engine against the flat engine: verdicts agree, every
   model checks, every refutation certifies, and every mutated
   certificate is rejected. *)
let diff_cert_vs_flat ratoms =
  let atoms = List.map atom_of_ratom ratoms in
  match (Lia.solve_cert atoms, Lia.solve atoms) with
  | (Lia.Cert_unknown | Lia.Cert_timeout), _ | _, (Lia.Unknown | Lia.Timeout) ->
    QCheck.assume_fail ()
  | Lia.Cert_sat m, Lia.Sat _ -> Lia.check_model atoms m
  | Lia.Cert_unsat cert, Lia.Unsat -> (
    match Certcheck.validate atoms cert with
    | Error msg -> QCheck.Test.fail_reportf "certificate rejected: %s" msg
    | Ok () -> (
      match Certcheck.validate atoms (mutate cert) with
      | Ok () -> QCheck.Test.fail_reportf "mutated certificate accepted"
      | Error _ -> true))
  | Lia.Cert_sat _, Lia.Unsat ->
    QCheck.Test.fail_reportf "certifying engine sat, flat engine unsat"
  | Lia.Cert_unsat _, Lia.Sat _ ->
    QCheck.Test.fail_reportf "certifying engine unsat, flat engine sat"

(* Cooper quantifier elimination as a third, independently implemented
   oracle: the existential closure of the conjunction is valid iff the
   system is satisfiable. *)
let diff_vs_presburger ratoms =
  let atoms = List.map atom_of_ratom ratoms in
  match Lia.solve_cert atoms with
  | Lia.Cert_unknown | Lia.Cert_timeout -> QCheck.assume_fail ()
  | verdict ->
    let formula =
      let conj = P.And (List.map pres_of_ratom ratoms) in
      let nvars =
        match ratoms with [] -> 0 | a :: _ -> List.length a.coeffs
      in
      let rec close i f =
        if i < 0 then f else close (i - 1) (P.Exists (Printf.sprintf "x%d" i, f))
      in
      close (nvars - 1) conj
    in
    let sat_qe = P.is_valid formula in
    (match verdict with
     | Lia.Cert_sat _ ->
       sat_qe || QCheck.Test.fail_reportf "solver sat, Cooper says unsat"
     | Lia.Cert_unsat cert ->
       (match Certcheck.validate atoms cert with
        | Error msg -> QCheck.Test.fail_reportf "certificate rejected: %s" msg
        | Ok () -> ());
       (not sat_qe) || QCheck.Test.fail_reportf "solver unsat, Cooper says sat"
     | _ -> true)

(* CDCL(T): the boolean solver over theory atoms must agree with a
   direct case analysis.  Build (a1 /\ a2) \/ (a3 /\ a4) style formulas
   and compare Solver against satisfiability of either disjunct. *)
let diff_solver_formula (left, right) =
  let la = List.map atom_of_ratom left and ra = List.map atom_of_ratom right in
  let module F = Smt.Formula in
  let conj atoms = F.conj (List.map (fun a -> F.atom a) atoms) in
  let f = F.disj [ conj la; conj ra ] in
  match Smt.Solver.solve f with
  | Smt.Solver.Unknown -> QCheck.assume_fail ()
  | Smt.Solver.Sat m ->
    let assign v' =
      match List.assoc_opt v' m with Some b -> Q.of_bigint b | None -> Q.zero
    in
    List.for_all (A.holds assign) la || List.for_all (A.holds assign) ra
    || QCheck.Test.fail_reportf "CDCL(T) model satisfies neither disjunct"
  | Smt.Solver.Unsat -> (
    match (Lia.solve la, Lia.solve ra) with
    | Lia.Unsat, Lia.Unsat -> true
    | (Lia.Unknown | Lia.Timeout), _ | _, (Lia.Unknown | Lia.Timeout) ->
      QCheck.assume_fail ()
    | _ -> QCheck.Test.fail_reportf "CDCL(T) unsat but a disjunct is satisfiable")

let () =
  Alcotest.run "certificates"
    [
      ( "unit",
        [
          Alcotest.test_case "farkas simple" `Quick test_farkas_simple;
          Alcotest.test_case "farkas tightened premises" `Quick test_farkas_tightened;
          Alcotest.test_case "divisibility conflict" `Quick test_div_conflict;
          Alcotest.test_case "trivially false input" `Quick test_trivially_false;
          Alcotest.test_case "branch certificate" `Quick test_branch;
          Alcotest.test_case "split certificate" `Quick test_split;
          Alcotest.test_case "sat model" `Quick test_sat_model;
          Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "mutation rejected" `Quick test_mutation_unit;
        ] );
      ( "simplex-cores",
        [
          Alcotest.test_case "conflict explanation" `Quick test_simplex_explanation;
          Alcotest.test_case "untagged degrades to None" `Quick
            test_simplex_untagged_degrades;
        ] );
      ( "session-cores",
        [
          Alcotest.test_case "core and depth" `Quick test_session_core_depth;
          Alcotest.test_case "shallow core across frames" `Quick
            test_session_shallow_core;
        ] );
      ( "differential",
        [
          prop "cert engine vs flat engine" 300
            (arb_system ~vars:3 ~max_atoms:5 ())
            diff_cert_vs_flat;
          (* Cooper QE is doubly exponential in practice: keep its
             diet small (coefficients in [-2,2], three atoms) so the
             oracle stays fast on every seed. *)
          prop "cert engine vs Cooper QE" 80
            (arb_system ~max_coeff:2 ~vars:2 ~max_atoms:3 ())
            diff_vs_presburger;
          prop "CDCL(T) vs disjunct analysis" 100
            QCheck.(
              pair
                (arb_system ~vars:2 ~max_atoms:3 ())
                (arb_system ~vars:2 ~max_atoms:3 ()))
            diff_solver_formula;
        ] );
    ]
