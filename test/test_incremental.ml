(* Cross-validation of the incremental prefix-sharing discharge engine
   against the flat one-query-per-schema reference engine.

   The incremental checker (limits.incremental, the default) promises
   bit-identical outcomes, witness traces, schema counts (= enumeration
   positions, so budget aborts land on the same schema) and slot totals,
   while solving strictly no more simplex steps.  This suite pins that
   contract on:

   - every bundled bv-broadcast property and every simplified-consensus
     property (Table 2 rows in full, symmetric variants under a schema
     budget to pin the deterministic abort path);
   - the naive-consensus abort rows and the broken-resilience
     counterexample (witness equality included);
   - the parallel incremental engine (jobs > 1) against the sequential
     one — outcome/witness/schemas/slots only: the subtree-pruned and
     prefix-hit counters legitimately differ in granularity (one
     sequential prune may surface as several pruned jobs);
   - a qcheck property over random small DAG automata, whose verdicts
     must also be confirmed by the explicit-state checker. *)

module A = Ta.Automaton
module G = Ta.Guard
module P = Ta.Pexpr
module C = Ta.Cond
module S = Ta.Spec
module Ck = Holistic.Checker

let limits ?(max_schemas = 100_000) ?(jobs = 1) ~incremental () =
  { Ck.default_limits with max_schemas; jobs; incremental }

let outcome_repr = function
  | Ck.Holds -> "holds"
  | Ck.Violated w -> Format.asprintf "violated@\n%a" Holistic.Witness.pp w
  | Ck.Aborted reason -> "aborted: " ^ reason
  | Ck.Partial { quarantined; reason } ->
    Format.asprintf "partial (%d quarantined): %s" (List.length quarantined) reason

(* Incremental on vs off (both sequential): identical outcome (witness
   trace included), schema count and slot total; no more solver steps.
   Returns the incremental result for further inspection. *)
let check_pair ?max_schemas name u spec =
  let flat =
    Ck.verify_with_universe ~limits:(limits ?max_schemas ~incremental:false ()) u spec
  in
  let inc =
    Ck.verify_with_universe ~limits:(limits ?max_schemas ~incremental:true ()) u spec
  in
  Alcotest.(check string)
    (name ^ ": outcome/witness")
    (outcome_repr flat.Ck.outcome) (outcome_repr inc.Ck.outcome);
  Alcotest.(check int) (name ^ ": schemas") flat.Ck.stats.schemas_checked
    inc.Ck.stats.schemas_checked;
  Alcotest.(check int) (name ^ ": slots") flat.Ck.stats.slots_total inc.Ck.stats.slots_total;
  Alcotest.(check bool)
    (name ^ ": steps no worse")
    true
    (inc.Ck.stats.solver_steps <= flat.Ck.stats.solver_steps);
  (* Checked + skipped is the whole transcript. *)
  Alcotest.(check bool)
    (name ^ ": skipped <= schemas")
    true
    (inc.Ck.stats.schemas_skipped <= inc.Ck.stats.schemas_checked);
  (* Core-guided sibling prunes are a subset of all prunes, and the flat
     engine (which never opens a session) reports none. *)
  Alcotest.(check int) (name ^ ": flat core prunes") 0 flat.Ck.stats.core_prunes;
  Alcotest.(check bool)
    (name ^ ": core prunes <= prunes")
    true
    (inc.Ck.stats.core_prunes <= inc.Ck.stats.subtrees_pruned);
  (flat, inc)

(* Parallel incremental vs sequential incremental: same outcome,
   witness, schemas and slots (steps/hits excluded by design). *)
let check_par ?max_schemas ?(par_jobs = 4) name u spec =
  let seq =
    Ck.verify_with_universe ~limits:(limits ?max_schemas ~incremental:true ()) u spec
  in
  let par =
    Ck.verify_with_universe
      ~limits:(limits ?max_schemas ~jobs:par_jobs ~incremental:true ())
      u spec
  in
  Alcotest.(check string)
    (name ^ ": par outcome/witness")
    (outcome_repr seq.Ck.outcome) (outcome_repr par.Ck.outcome);
  Alcotest.(check int) (name ^ ": par schemas") seq.Ck.stats.schemas_checked
    par.Ck.stats.schemas_checked;
  Alcotest.(check int) (name ^ ": par slots") seq.Ck.stats.slots_total
    par.Ck.stats.slots_total

(* ------------------------------------------------------------------ *)
(* The paper's automata.                                                *)

let bv_u = lazy (Holistic.Universe.build Models.Bv_ta.automaton)

let bv_tests =
  List.map
    (fun (spec : S.t) ->
      Alcotest.test_case ("bv " ^ spec.name) `Quick (fun () ->
          ignore (check_pair ("bv " ^ spec.name) (Lazy.force bv_u) spec);
          check_par ("bv " ^ spec.name) (Lazy.force bv_u) spec))
    Models.Bv_ta.all_specs

let simplified_u = lazy (Holistic.Universe.build Models.Simplified_ta.automaton)

(* The pruning must actually fire somewhere cheap and deterministic:
   Inv2_0 pins a counter to zero initially while unlocked guards demand
   the matching shared variable to be positive, which the interval
   propagation refutes prefix-by-prefix.  Incremental only — the flat
   run of this property is the slow path this engine exists to avoid
   (it is compared in full in the Slow suite below). *)
let test_pruning_fires () =
  let spec =
    List.find
      (fun (s : S.t) -> s.name = "Inv2_0")
      Models.Simplified_ta.table2_specs
  in
  let inc =
    Ck.verify_with_universe ~limits:(limits ~incremental:true ())
      (Lazy.force simplified_u) spec
  in
  (match inc.Ck.outcome with
   | Ck.Holds -> ()
   | o -> Alcotest.failf "Inv2_0 expected to hold, got %s" (outcome_repr o));
  Alcotest.(check bool) "subtrees pruned" true (inc.Ck.stats.subtrees_pruned > 0);
  Alcotest.(check bool) "schemas skipped" true (inc.Ck.stats.schemas_skipped > 0)

(* The five Table 2 properties run to completion in both engines; on
   Inv2_0 the issue's acceptance bar — at least a 3x solver-step
   reduction — is asserted outright (measured: >100x). *)
let simplified_full_tests =
  List.map
    (fun (spec : S.t) ->
      Alcotest.test_case ("simplified " ^ spec.name) `Slow (fun () ->
          let flat, inc =
            check_pair ("simplified " ^ spec.name) (Lazy.force simplified_u) spec
          in
          if spec.name = "Inv2_0" then
            Alcotest.(check bool)
              "Inv2_0: at least 3x fewer simplex steps" true
              (3 * inc.Ck.stats.solver_steps <= flat.Ck.stats.solver_steps)))
    Models.Simplified_ta.table2_specs

(* The symmetric _1 variants pin the deterministic schema-budget abort:
   identical abort reason, schema count and slot total even when the
   budget trips inside a pruned subtree. *)
let simplified_budgeted_tests =
  let in_table2 (s : S.t) =
    List.exists (fun (t : S.t) -> t.name = s.name) Models.Simplified_ta.table2_specs
  in
  List.filter_map
    (fun (spec : S.t) ->
      if in_table2 spec then None
      else
        Some
          (Alcotest.test_case ("simplified " ^ spec.name ^ " (budgeted)") `Slow (fun () ->
               ignore
                 (check_pair ~max_schemas:150
                    ("simplified " ^ spec.name)
                    (Lazy.force simplified_u) spec);
               check_par ~max_schemas:150
                 ("simplified " ^ spec.name)
                 (Lazy.force simplified_u) spec)))
    Models.Simplified_ta.all_specs

let test_naive_budget_abort () =
  let u = Holistic.Universe.build Models.Naive_ta.automaton in
  List.iter
    (fun (spec : S.t) ->
      ignore (check_pair ~max_schemas:200 ("naive " ^ spec.name) u spec);
      check_par ~max_schemas:200 ("naive " ^ spec.name) u spec)
    Models.Naive_ta.table2_specs

let test_broken_resilience_witness () =
  let u = Holistic.Universe.build Models.Simplified_ta.automaton_broken_resilience in
  let _, inc = check_pair "broken-resilience Inv1_0" u Models.Simplified_ta.inv1_0 in
  check_par "broken-resilience Inv1_0" u Models.Simplified_ta.inv1_0;
  match inc.Ck.outcome with
  | Ck.Violated w ->
    let value p = List.assoc p w.Holistic.Witness.params in
    Alcotest.(check bool) "witness breaks n > 3t" true (value "n" <= 3 * value "t")
  | _ -> Alcotest.fail "expected a counterexample"

(* ------------------------------------------------------------------ *)
(* Random small DAG automata: flat and incremental verdicts must agree
   schema-for-schema, and the shared verdict must be confirmed by the
   explicit-state checker at small parameters.                          *)

let locations = [ "L0"; "L1"; "L2"; "L3" ]

let guard_pool =
  [
    G.tt;
    G.ge1 "x" (P.const 1);
    G.ge1 "x" (P.const 2);
    G.ge1 "y" (P.const 1);
    G.ge [ ("x", 1); ("y", 1) ] (P.const 2);
  ]

let update_pool = [ []; [ ("x", 1) ]; [ ("y", 1) ] ]

type rule_desc = { src : int; dst : int; guard : int; update : int; fair : bool }

let arb_ta =
  let open QCheck in
  let edges =
    List.concat_map
      (fun i -> List.filter_map (fun j -> if j > i then Some (i, j) else None) [ 0; 1; 2; 3 ])
      [ 0; 1; 2 ]
  in
  let arb_desc (src, dst) =
    map
      (fun (present, guard, update, fair) ->
        if present then Some { src; dst; guard; update; fair } else None)
      (tup4 bool
         (int_range 0 (List.length guard_pool - 1))
         (int_range 0 (List.length update_pool - 1))
         bool)
  in
  let rec sequence = function
    | [] -> Gen.return []
    | g :: gs -> Gen.map2 (fun x xs -> x :: xs) g (sequence gs)
  in
  let gens = List.map (fun e -> (arb_desc e).gen) edges in
  make
    ~print:(fun descs ->
      String.concat ";"
        (List.map
           (function
             | None -> "-"
             | Some d ->
               Printf.sprintf "%d->%d g%d u%d %s" d.src d.dst d.guard d.update
                 (if d.fair then "F" else "U"))
           descs))
    (sequence gens)

let build_ta descs =
  let rules =
    List.concat_map
      (function
        | None -> []
        | Some d ->
          [
            A.rule
              (Printf.sprintf "r%d%d" d.src d.dst)
              ~source:(List.nth locations d.src) ~target:(List.nth locations d.dst)
              ~guard:(List.nth guard_pool d.guard)
              ~update:(List.nth update_pool d.update)
              ~fairness:(if d.fair then A.Fair else A.Unfair);
          ])
      descs
  in
  A.make ~name:"random" ~params:[ "n" ] ~shared:[ "x"; "y" ] ~locations
    ~initial:[ "L0"; "L1" ]
    ~resilience:[ P.of_terms [ ("n", 1) ] (-1) ]
    ~population:(P.param "n") ~rules ()

let reach_spec =
  S.invariant ~name:"reach-L3" ~ltl:"<>(k[L3] != 0)"
    ~bad:[ ("L3 reached", C.some_nonempty [ "L3" ]) ]
    ()

let drain_spec =
  S.liveness ~name:"drain" ~ltl:"<>(k[L0]=0 /\\ k[L1]=0 /\\ k[L2]=0)"
    ~target_violated:(C.some_nonempty [ "L0"; "L1"; "L2" ])
    ()

let engines_and_explicit_agree spec descs =
  let ta = build_ta descs in
  let verify incremental =
    Ck.verify ~limits:(limits ~max_schemas:5_000 ~incremental ()) ta spec
  in
  let flat = verify false in
  let inc = verify true in
  outcome_repr flat.Ck.outcome = outcome_repr inc.Ck.outcome
  && flat.Ck.stats.schemas_checked = inc.Ck.stats.schemas_checked
  && flat.Ck.stats.slots_total = inc.Ck.stats.slots_total
  && inc.Ck.stats.solver_steps <= flat.Ck.stats.solver_steps
  && inc.Ck.stats.core_prunes <= inc.Ck.stats.subtrees_pruned
  &&
  match inc.Ck.outcome with
  | Ck.Aborted _ | Ck.Partial _ -> QCheck.assume_fail ()
  | Ck.Holds ->
    List.for_all
      (fun n ->
        match Explicit.check ta spec [ ("n", n) ] with
        | Explicit.Holds -> true
        | Explicit.Violated _ -> false)
      [ 1; 2; 3; 4 ]
  | Ck.Violated w -> (
    List.assoc "n" w.Holistic.Witness.params <= 8
    &&
    match Explicit.check ta spec w.Holistic.Witness.params with
    | Explicit.Violated _ -> true
    | Explicit.Holds -> false)

(* A deterministic companion to the random sweep, shaped like Inv2_0:
   the only producer of [x] sits in an initial location that the spec's
   initial condition empties, so unlocking [x >= 1] is structurally
   fine (the producer's source is an initial location) but numerically
   impossible — exactly what the interval propagation refutes, prefix
   by prefix.  Pruning must fire, and the verdict must still agree
   with the flat engine and the explicit-state checker. *)
let gadget_spec =
  S.invariant ~name:"gadget-reach-L3" ~ltl:"<>(k[L3] != 0)"
    ~init:(C.empty "L1")
    ~bad:[ ("L3 reached", C.some_nonempty [ "L3" ]) ]
    ()

let test_gadget_pruning () =
  let ta =
    A.make ~name:"gadget" ~params:[ "n" ] ~shared:[ "x" ]
      ~locations:[ "L0"; "L1"; "L2"; "L3" ]
      ~initial:[ "L0"; "L1" ]
      ~resilience:[ P.of_terms [ ("n", 1) ] (-1) ]
      ~population:(P.param "n")
      ~rules:
        [
          A.rule "ra" ~source:"L1" ~target:"L2" ~guard:G.tt
            ~update:[ ("x", 1) ] ~fairness:A.Unfair;
          A.rule "rb" ~source:"L0" ~target:"L3"
            ~guard:(G.ge1 "x" (P.const 1))
            ~update:[] ~fairness:A.Unfair;
        ]
      ()
  in
  let u = Holistic.Universe.build ta in
  let _, inc = check_pair "gadget reach-L3" u gadget_spec in
  check_par "gadget reach-L3" u gadget_spec;
  Alcotest.(check bool) "subtrees pruned" true (inc.Ck.stats.subtrees_pruned > 0);
  Alcotest.(check bool) "schemas skipped" true (inc.Ck.stats.schemas_skipped > 0);
  (match inc.Ck.outcome with
   | Ck.Holds -> ()
   | o -> Alcotest.failf "gadget expected to hold, got %s" (outcome_repr o));
  List.iter
    (fun n ->
      match Explicit.check ta gadget_spec [ ("n", n) ] with
      | Explicit.Holds -> ()
      | Explicit.Violated _ -> Alcotest.fail "explicit checker disagrees")
    [ 1; 2; 3 ]

(* ------------------------------------------------------------------ *)
(* End-to-end certificate emission: run the sequential engines with a
   sink attached, then replay every emitted JSONL line against the
   standalone checker — the in-process version of
   `verify --emit-certs` piped into `check-cert`.  On a Holds outcome
   the emitted certificates must cover the whole transcript: one line
   per discharged schema, one spanning line per pruned or statically
   refuted subtree. *)

let replay_certificates path =
  let module J = Jsonc in
  let ic = open_in path in
  let lines = ref 0 and covered = ref 0 in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then begin
         incr lines;
         let j = J.of_string line in
         let kind = J.to_str (J.member "kind" j) in
         let atoms =
           List.map Smt.Certificate.atom_of_json (J.to_list (J.member "atoms" j))
         in
         let branches =
           if kind = "schema" then
             List.map
               (fun alts ->
                 List.map
                   (fun cube -> List.map Smt.Certificate.atom_of_json (J.to_list cube))
                   (J.to_list alts))
               (J.to_list (J.member "branches" j))
           else []
         in
         covered :=
           !covered
           + (if kind = "prefix" || kind = "static" then
                J.to_int (J.member "span" j)
              else 1);
         match
           Smt.Certcheck.validate_query ~atoms ~branches
             (Smt.Certificate.of_json (J.member "cert" j))
         with
         | Ok () -> ()
         | Error msg -> Alcotest.failf "certificate line %d rejected: %s" !lines msg
       end
     done
   with End_of_file -> close_in ic);
  (!lines, !covered)

let emit_and_replay name u (specs : S.t list) ~incremental =
  let path = Filename.temp_file "holistic_certs" ".jsonl" in
  let oc = open_out path in
  let sink = Holistic.Certs.create oc in
  let results =
    List.map
      (fun spec ->
        Ck.verify_with_universe ~limits:(limits ~incremental ()) ~certs:sink u spec)
      specs
  in
  close_out oc;
  Alcotest.(check int) (name ^ ": no emission failures") 0 (Holistic.Certs.failed sink);
  Alcotest.(check bool) (name ^ ": certificates emitted") true
    (Holistic.Certs.emitted sink > 0);
  let lines, covered = replay_certificates path in
  Sys.remove path;
  Alcotest.(check int) (name ^ ": every certificate written") (Holistic.Certs.emitted sink)
    lines;
  let all_hold = List.for_all (fun r -> r.Ck.outcome = Ck.Holds) results in
  if all_hold then
    Alcotest.(check int)
      (name ^ ": certificates cover the whole transcript")
      (List.fold_left (fun acc r -> acc + r.Ck.stats.schemas_checked) 0 results)
      covered

let test_certificate_emission () =
  emit_and_replay "bv inc" (Lazy.force bv_u) Models.Bv_ta.all_specs ~incremental:true;
  emit_and_replay "bv flat" (Lazy.force bv_u)
    [ List.hd Models.Bv_ta.all_specs ]
    ~incremental:false

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"random DAGs: reachability, flat = incremental = explicit"
         ~count:60 arb_ta
         (engines_and_explicit_agree reach_spec));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"random DAGs: liveness, flat = incremental = explicit"
         ~count:60 arb_ta
         (engines_and_explicit_agree drain_spec));
    Alcotest.test_case "crafted gadget: pruning fires, explicit agrees" `Quick
      test_gadget_pruning;
  ]

let () =
  Alcotest.run "incremental"
    [
      ("bv incremental vs flat", bv_tests @ [ Alcotest.test_case "pruning fires" `Quick test_pruning_fires ]);
      ("simplified incremental vs flat", simplified_full_tests @ simplified_budgeted_tests);
      ( "abort and witness paths",
        [
          Alcotest.test_case "naive budget aborts identically" `Slow test_naive_budget_abort;
          Alcotest.test_case "broken-resilience witness identical" `Quick
            test_broken_resilience_witness;
        ] );
      ("random automata", qcheck_tests);
      ( "certificates",
        [
          Alcotest.test_case "emit, replay with the standalone checker" `Slow
            test_certificate_emission;
        ] );
    ]
