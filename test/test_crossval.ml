(* Differential testing of the parameterized checker: generate random
   monotone DAG threshold automata and compare the parameterized verdict
   against the explicit-state checker.

   - If the parameterized checker says a property HOLDS for all
     parameters, the explicit checker must agree for every small n.
   - If it produces a counterexample, the explicit checker must confirm
     the violation at the witness parameters.

   This exercises the whole pipeline (universe, schema enumeration,
   encoding, LIA solving, witness reconstruction) against an independent
   semantics. *)

module A = Ta.Automaton
module G = Ta.Guard
module P = Ta.Pexpr
module C = Ta.Cond
module S = Ta.Spec

let locations = [ "L0"; "L1"; "L2"; "L3" ]

(* A small pool of guards keeps schema counts manageable. *)
let guard_pool =
  [
    G.tt;
    G.ge1 "x" (P.const 1);
    G.ge1 "x" (P.const 2);
    G.ge1 "y" (P.const 1);
    G.ge [ ("x", 1); ("y", 1) ] (P.const 2);
  ]

let update_pool = [ []; [ ("x", 1) ]; [ ("y", 1) ] ]

(* Encode a random automaton by a list of rule descriptors: for each
   forward edge (i, j), whether it exists and which guard/update/fairness
   it carries. *)
type rule_desc = { src : int; dst : int; guard : int; update : int; fair : bool }

let arb_ta =
  let open QCheck in
  let edges =
    List.concat_map (fun i -> List.filter_map (fun j -> if j > i then Some (i, j) else None) [ 0; 1; 2; 3 ]) [ 0; 1; 2 ]
  in
  let arb_desc (src, dst) =
    map
      (fun (present, guard, update, fair) ->
        if present then Some { src; dst; guard; update; fair } else None)
      (tup4 bool (int_range 0 (List.length guard_pool - 1))
         (int_range 0 (List.length update_pool - 1))
         bool)
  in
  let rec sequence = function
    | [] -> Gen.return []
    | g :: gs -> Gen.map2 (fun x xs -> x :: xs) g (sequence gs)
  in
  let gens = List.map (fun e -> (arb_desc e).gen) edges in
  make
    ~print:(fun descs ->
      String.concat ";"
        (List.map
           (function
             | None -> "-"
             | Some d ->
               Printf.sprintf "%d->%d g%d u%d %s" d.src d.dst d.guard d.update
                 (if d.fair then "F" else "U"))
           descs))
    (sequence gens)

let build_ta descs =
  let rules =
    List.filteri (fun _ _ -> true) descs
    |> List.concat_map (function
         | None -> []
         | Some d ->
           [
             A.rule
               (Printf.sprintf "r%d%d" d.src d.dst)
               ~source:(List.nth locations d.src) ~target:(List.nth locations d.dst)
               ~guard:(List.nth guard_pool d.guard)
               ~update:(List.nth update_pool d.update)
               ~fairness:(if d.fair then A.Fair else A.Unfair);
           ])
  in
  A.make ~name:"random" ~params:[ "n" ] ~shared:[ "x"; "y" ] ~locations
    ~initial:[ "L0"; "L1" ]
    ~resilience:[ P.of_terms [ ("n", 1) ] (-1) ]
    ~population:(P.param "n") ~rules ()

let reach_spec =
  S.invariant ~name:"reach-L3" ~ltl:"<>(k[L3] != 0)"
    ~bad:[ ("L3 reached", C.some_nonempty [ "L3" ]) ]
    ()

let reach2_spec =
  S.invariant ~name:"reach-L3-twice" ~ltl:"<>(k[L3] >= 2)"
    ~bad:[ ("two in L3", C.counter_ge "L3" 2) ]
    ()

let drain_spec =
  S.liveness ~name:"drain" ~ltl:"<>(k[L0]=0 /\\ k[L1]=0 /\\ k[L2]=0)"
    ~target_violated:(C.some_nonempty [ "L0"; "L1"; "L2" ])
    ()

let limits = Holistic.Checker.crossval_limits

let consistent ta spec =
  match (Holistic.Checker.verify ~limits ta spec).outcome with
  | Holistic.Checker.Aborted _ | Holistic.Checker.Partial _ -> QCheck.assume_fail ()
  | Holistic.Checker.Holds ->
    (* Explicit checking at small parameters must agree. *)
    List.for_all
      (fun n ->
        match Explicit.check ta spec [ ("n", n) ] with
        | Explicit.Holds -> true
        | Explicit.Violated _ -> false)
      [ 1; 2; 3; 4 ]
  | Holistic.Checker.Violated w -> (
    let n = List.assoc "n" w.Holistic.Witness.params in
    (* Witnesses should be small for these automata; replay explicitly. *)
    n <= 8
    &&
    match Explicit.check ta spec w.Holistic.Witness.params with
    | Explicit.Violated _ -> true
    | Explicit.Holds -> false)

let prop name spec =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count:120 arb_ta (fun descs ->
         let ta = build_ta descs in
         consistent ta spec))

(* ------------------------------------------------------------------ *)
(* A second family with paper-style parameters n, t, f and threshold
   guards over them, exercising the guard implication order and the
   Byzantine-discounted thresholds. *)

let byz_guard_pool =
  [
    G.tt;
    G.ge1 "x" Models.Params.t1f;
    G.ge1 "x" Models.Params.t2f;
    G.ge1 "y" Models.Params.t1f;
    G.ge [ ("x", 1); ("y", 1) ] Models.Params.ntf;
  ]

let build_byz_ta descs =
  let rules =
    List.concat_map
      (function
        | None -> []
        | Some d ->
          [
            A.rule
              (Printf.sprintf "r%d%d" d.src d.dst)
              ~source:(List.nth locations d.src) ~target:(List.nth locations d.dst)
              ~guard:(List.nth byz_guard_pool d.guard)
              ~update:(List.nth update_pool d.update)
              ~fairness:(if d.fair then A.Fair else A.Unfair);
          ])
      descs
  in
  A.make ~name:"random_byz" ~params:Models.Params.names ~shared:[ "x"; "y" ] ~locations
    ~initial:[ "L0"; "L1" ] ~resilience:Models.Params.resilience
    ~population:Models.Params.population ~rules ()

let byz_consistent ta spec =
  match (Holistic.Checker.verify ~limits ta spec).outcome with
  | Holistic.Checker.Aborted _ | Holistic.Checker.Partial _ -> QCheck.assume_fail ()
  | Holistic.Checker.Holds ->
    List.for_all
      (fun params ->
        match Explicit.check ta spec params with
        | Explicit.Holds -> true
        | Explicit.Violated _ -> false)
      [ [ ("n", 4); ("t", 1); ("f", 1) ]; [ ("n", 4); ("t", 1); ("f", 0) ];
        [ ("n", 5); ("t", 1); ("f", 1) ] ]
  | Holistic.Checker.Violated w -> (
    List.assoc "n" w.Holistic.Witness.params <= 10
    &&
    match Explicit.check ta spec w.Holistic.Witness.params with
    | Explicit.Violated _ -> true
    | Explicit.Holds -> false)

let byz_prop name spec =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count:80 arb_ta (fun descs ->
         let ta = build_byz_ta descs in
         byz_consistent ta spec))

let () =
  Alcotest.run "crossval"
    [
      ( "parameterized-vs-explicit",
        [
          prop "reachability verdicts agree" reach_spec;
          prop "counting verdicts agree" reach2_spec;
          prop "liveness verdicts agree" drain_spec;
        ] );
      ( "byzantine-thresholds",
        [
          byz_prop "reachability verdicts agree (n,t,f guards)" reach_spec;
          byz_prop "liveness verdicts agree (n,t,f guards)" drain_spec;
        ] );
    ]
