(* Tests for the conformance-fuzzing subsystem (lib/fuzz) and the simnet
   features it leans on: the seq-indexed network, the validating
   scheduler, the shared random-delivery driver, trace (de)serialization,
   determinism of whole campaigns, oracle soundness on conforming
   configurations, detection + shrinking + replay of seeded violations,
   cross-validation against the explicit-state checker, and realization
   of parameterized-checker witnesses as executable schedules. *)

module Net = Simnet.Network
module T = Fuzz.Trace

let base_scenario =
  {
    T.kind = T.Bv_broadcast;
    n = 4;
    t = 1;
    inputs = [ 1; 0; 1 ];
    byzantine = [ (3, T.Equivocate) ];
    sched_seed = 11;
    drop_rate = 0;
    dup_rate = 0;
    max_delay = 0;
    partition = None;
    max_round = 0;
    max_steps = 10_000;
  }

(* ------------------------------------------------------------------ *)
(* Satellite: the seq-indexed network.                                 *)

let test_network_fifo () =
  let net : int Net.t = Net.create ~n:3 in
  for i = 0 to 9 do
    Net.send net ~src:0 ~dest:(i mod 3) i
  done;
  let seqs = List.map (fun (p : _ Net.pending) -> p.seq) (Net.pending net) in
  Alcotest.(check (list int)) "FIFO order" (List.init 10 Fun.id) seqs;
  (* Deliver one from the middle, drop another: order of the rest holds. *)
  (match Net.find net 4 with
   | Some p -> ignore (Net.deliver net p)
   | None -> Alcotest.fail "seq 4 not found");
  (match Net.find net 7 with
   | Some p -> ignore (Net.drop net p)
   | None -> Alcotest.fail "seq 7 not found");
  let seqs = List.map (fun (p : _ Net.pending) -> p.seq) (Net.pending net) in
  Alcotest.(check (list int)) "order after removal" [ 0; 1; 2; 3; 5; 6; 8; 9 ] seqs;
  Alcotest.(check int) "delivered" 1 (Net.delivered_count net);
  Alcotest.(check int) "dropped" 1 (Net.dropped_count net);
  Alcotest.(check bool) "find delivered" true (Net.find net 4 = None);
  Alcotest.(check bool) "find pending" true (Net.find net 5 <> None)

let test_network_compaction () =
  (* Interleave sends and deliveries well past the compaction threshold;
     the FIFO view must stay exact. *)
  let net : int Net.t = Net.create ~n:2 in
  let next = ref 0 in
  for round = 1 to 50 do
    for _ = 1 to 20 do
      Net.send net ~src:0 ~dest:1 !next;
      incr next
    done;
    for _ = 1 to if round mod 2 = 0 then 25 else 10 do
      match Net.pending net with
      | p :: _ -> ignore (Net.deliver net p)
      | [] -> ()
    done
  done;
  let seqs = List.map (fun (p : _ Net.pending) -> p.seq) (Net.pending net) in
  Alcotest.(check (list int)) "sorted ascending" (List.sort compare seqs) seqs;
  Alcotest.(check int) "count consistent" (Net.pending_count net) (List.length seqs);
  Alcotest.(check int) "conservation" !next
    (Net.pending_count net + Net.delivered_count net)

let test_network_bad_destination () =
  let net : int Net.t = Net.create ~n:2 in
  Alcotest.check_raises "bad destination"
    (Invalid_argument "Network.send: bad destination") (fun () ->
      Net.send net ~src:0 ~dest:5 7)

(* ------------------------------------------------------------------ *)
(* Satellite: the scheduler validates Custom picks.                    *)

let test_scheduler_rejects_foreign_pick () =
  let net : int Net.t = Net.create ~n:2 in
  Net.send net ~src:0 ~dest:1 1;
  Net.send net ~src:0 ~dest:1 2;
  let stale = List.hd (Net.pending net) in
  ignore (Net.deliver net stale);
  let sched = Simnet.Scheduler.Custom (fun _ -> Some stale) in
  Alcotest.check_raises "stale pick rejected"
    (Invalid_argument
       "Scheduler.pick: custom scheduler returned a message that is not pending")
    (fun () -> ignore (Simnet.Scheduler.pick sched (Net.pending net)))

let test_scheduler_custom_none_falls_back () =
  let net : int Net.t = Net.create ~n:2 in
  Net.send net ~src:0 ~dest:1 1;
  Net.send net ~src:0 ~dest:1 2;
  let sched = Simnet.Scheduler.Custom (fun _ -> None) in
  let p = Simnet.Scheduler.pick sched (Net.pending net) in
  Alcotest.(check int) "falls back to oldest" 0 p.Net.seq

(* ------------------------------------------------------------------ *)
(* Trace serialization.                                                *)

let test_trace_roundtrip () =
  let tr =
    {
      T.scenario =
        {
          base_scenario with
          T.byzantine = [ (1, T.Noise 42); (3, T.Flood 0) ];
          inputs = [ 1; 0 ];
          drop_rate = 5;
          dup_rate = 3;
          max_delay = 2;
          partition = Some { T.from_step = 3; to_step = 17; groups = [ [ 0; 1 ]; [ 2; 3 ] ] };
        };
      events = [ T.Deliver 0; T.Drop 3; T.Duplicate 2; T.Deliver 5 ];
    }
  in
  let round = T.of_string (T.to_string tr) in
  Alcotest.(check bool) "roundtrip" true (round = tr);
  Alcotest.(check string) "canonical" (T.to_string tr) (T.to_string round)

let test_trace_rejects_garbage () =
  Alcotest.(check bool) "parse error raised" true
    (match T.of_string "{\"version\":1}" with
     | exception (Fuzz.Json.Parse_error _ | Invalid_argument _) -> true
     | _ -> false);
  Alcotest.(check bool) "inconsistent scenario rejected" true
    (match T.validate { base_scenario with T.inputs = [ 1 ] } with
     | exception Invalid_argument _ -> true
     | () -> false)

(* ------------------------------------------------------------------ *)
(* Byzantine strategies (unit level).                                  *)

let strategy_messages strategy =
  let net : Dbft.Message.t Net.t = Net.create ~n:4 in
  let b = Dbft.Byzantine.create ~id:3 ~n:4 strategy net in
  Dbft.Byzantine.handle b ~src:0 (Dbft.Message.Bv { round = 0; value = 1 });
  (* A second delivery of the same round must not re-trigger sends. *)
  Dbft.Byzantine.handle b ~src:1 (Dbft.Message.Bv { round = 0; value = 0 });
  Net.pending net

let test_silent_sends_nothing () =
  Alcotest.(check int) "silent" 0 (List.length (strategy_messages Dbft.Byzantine.Silent))

let test_equivocate_pattern () =
  let msgs = strategy_messages Dbft.Byzantine.Equivocate in
  (* BV + AUX to each of the three other processes, once. *)
  Alcotest.(check int) "message count" 6 (List.length msgs);
  List.iter
    (fun (p : _ Net.pending) ->
      let expected = if 2 * p.dest < 4 then 0 else 1 in
      match p.msg with
      | Dbft.Message.Bv { value; _ } ->
        Alcotest.(check int) (Printf.sprintf "bv value to %d" p.dest) expected value
      | Dbft.Message.Aux { values; _ } ->
        Alcotest.(check (list int))
          (Printf.sprintf "aux values to %d" p.dest)
          [ expected ] (Dbft.Vset.to_list values))
    msgs

let test_noise_deterministic () =
  let show msgs =
    String.concat ";"
      (List.map
         (fun (p : _ Net.pending) ->
           Printf.sprintf "%d:%s" p.dest (Dbft.Message.to_string p.msg))
         msgs)
  in
  Alcotest.(check string) "same seed, same noise"
    (show (strategy_messages (Dbft.Byzantine.Noise 7)))
    (show (strategy_messages (Dbft.Byzantine.Noise 7)));
  Alcotest.(check int) "noise sends bv+aux to others" 6
    (List.length (strategy_messages (Dbft.Byzantine.Noise 7)))

let test_scripted_exact_emission () =
  let script ~round = [ (0, Dbft.Message.Bv { round; value = 1 }) ] in
  let msgs = strategy_messages (Dbft.Byzantine.Scripted script) in
  Alcotest.(check int) "one message" 1 (List.length msgs);
  match msgs with
  | [ p ] ->
    Alcotest.(check int) "dest" 0 p.Net.dest;
    Alcotest.(check bool) "payload" true (p.Net.msg = Dbft.Message.Bv { round = 0; value = 1 })
  | _ -> Alcotest.fail "unexpected messages"

(* Integration: with f = t the bv properties hold under every bundled
   adversary on every seed tried. *)
let test_bv_holds_under_each_adversary () =
  List.iter
    (fun adv ->
      List.iter
        (fun seed ->
          let s =
            { base_scenario with T.byzantine = [ (3, adv) ]; sched_seed = seed }
          in
          List.iter
            (fun (name, v) ->
              match v with
              | Fuzz.Oracle.Fail why ->
                Alcotest.failf "%s fails under %s (seed %d): %s" name
                  (T.adversary_name adv) seed why
              | Fuzz.Oracle.Pass | Fuzz.Oracle.Skip _ -> ())
            (Fuzz.Oracle.check s (Fuzz.Exec.run s)))
        [ 1; 2; 3; 4; 5 ])
    [ T.Silent; T.Equivocate; T.Noise 9; T.Flood 0; T.Flood 1 ]

(* ------------------------------------------------------------------ *)
(* Execution and replay.                                               *)

let test_run_records_replayable_trace () =
  let s = { base_scenario with T.dup_rate = 4; max_delay = 2; sched_seed = 3 } in
  let o = Fuzz.Exec.run s in
  Alcotest.(check bool) "quiesced" true o.quiesced;
  let r = Fuzz.Exec.replay ~strict:true o.trace in
  Alcotest.(check bool) "same outcome" true (r.procs = o.procs);
  Alcotest.(check int) "same deliveries" o.delivered r.delivered

let test_replay_detects_divergence () =
  let s = base_scenario in
  let o = Fuzz.Exec.run s in
  let bogus = { o.trace with T.events = o.trace.T.events @ [ T.Deliver 99_999 ] } in
  Alcotest.(check bool) "strict replay raises" true
    (match Fuzz.Exec.replay ~strict:true bogus with
     | exception Fuzz.Exec.Replay_divergence _ -> true
     | _ -> false);
  (* Tolerant replay skips the bogus event. *)
  let r = Fuzz.Exec.replay ~strict:false bogus in
  Alcotest.(check bool) "tolerant replay completes" true (r.procs = o.procs)

let test_drop_faults_gate_liveness () =
  (* Dropping messages to correct processes must Skip liveness oracles,
     never Fail them. *)
  List.iter
    (fun seed ->
      let s = { base_scenario with T.drop_rate = 30; sched_seed = seed } in
      let o = Fuzz.Exec.run s in
      List.iter
        (fun (name, v) ->
          match v with
          | Fuzz.Oracle.Fail why -> Alcotest.failf "%s fails under drops: %s" name why
          | _ -> ())
        (Fuzz.Oracle.check s o))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let test_partition_heals_and_liveness_holds () =
  let s =
    {
      base_scenario with
      T.partition = Some { T.from_step = 0; to_step = 60; groups = [ [ 0; 1 ]; [ 2; 3 ] ] };
      sched_seed = 5;
    }
  in
  let o = Fuzz.Exec.run s in
  Alcotest.(check bool) "quiesced after healing" true o.quiesced;
  List.iter
    (fun (name, v) ->
      match v with
      | Fuzz.Oracle.Fail why -> Alcotest.failf "%s fails across partition: %s" name why
      | _ -> ())
    (Fuzz.Oracle.check s o)

(* ------------------------------------------------------------------ *)
(* Campaigns.                                                          *)

let test_campaign_deterministic () =
  let r1 = Fuzz.Campaign.campaign ~seed:123 ~runs:60 ~profile:Fuzz.Campaign.Mixed () in
  let r2 = Fuzz.Campaign.campaign ~seed:123 ~runs:60 ~profile:Fuzz.Campaign.Mixed () in
  Alcotest.(check string) "byte-identical reports"
    (Fuzz.Campaign.report_to_string r1)
    (Fuzz.Campaign.report_to_string r2)

let test_campaign_conforming_clean () =
  let r = Fuzz.Campaign.campaign ~seed:7 ~runs:120 ~profile:Fuzz.Campaign.Conforming () in
  List.iter
    (fun (name, (_, fails, _)) ->
      Alcotest.(check int) (name ^ " failures") 0 fails)
    r.oracle_counts;
  Alcotest.(check int) "no divergences" 0 (List.length r.divergences);
  Alcotest.(check bool) "some runs cross-validated" true (r.crossval_runs > 0)

let test_campaign_broken_detects_and_shrinks () =
  let r = Fuzz.Campaign.campaign ~seed:7 ~runs:30 ~profile:Fuzz.Campaign.Broken () in
  Alcotest.(check bool) "violations found" true (r.violations <> []);
  let just =
    List.filter
      (fun (v : Fuzz.Campaign.violation) -> v.oracle = "bv-justification")
      r.violations
  in
  Alcotest.(check bool) "justification violations found" true (just <> []);
  List.iter
    (fun (v : Fuzz.Campaign.violation) ->
      Alcotest.(check bool)
        (Printf.sprintf "run %d (%s) shrunk no larger" v.run v.oracle)
        true
        (v.shrunk_events <= v.original_events);
      (* The shipped reproducer strict-replays to the same violation. *)
      let o = Fuzz.Exec.replay ~strict:true v.trace in
      match List.assoc_opt v.oracle (Fuzz.Oracle.check v.trace.T.scenario o) with
      | Some (Fuzz.Oracle.Fail _) -> ()
      | _ -> Alcotest.failf "run %d: shrunk trace does not replay %s" v.run v.oracle)
    r.violations;
  (* Safety violations shrink to a handful of events. *)
  List.iter
    (fun (v : Fuzz.Campaign.violation) ->
      Alcotest.(check bool)
        (Printf.sprintf "run %d justification reproducer is small" v.run)
        true (v.shrunk_events <= 12))
    just

let test_report_json_shape () =
  let r = Fuzz.Campaign.campaign ~seed:5 ~runs:10 ~profile:Fuzz.Campaign.Broken () in
  let j = Fuzz.Json.of_string (Fuzz.Campaign.report_to_string r) in
  Alcotest.(check int) "runs" 10 (Fuzz.Json.to_int (Fuzz.Json.member "runs" j));
  Alcotest.(check bool) "total_failures positive" true
    (Fuzz.Json.to_int (Fuzz.Json.member "total_failures" j) > 0);
  let violations = Fuzz.Json.to_list (Fuzz.Json.member "violations" j) in
  Alcotest.(check bool) "violations embedded" true (violations <> []);
  (* Each embedded trace parses back into a runnable reproducer. *)
  List.iter
    (fun vj ->
      let tr = T.of_json (Fuzz.Json.member "trace" vj) in
      ignore (Fuzz.Exec.replay ~strict:true tr))
    violations

(* ------------------------------------------------------------------ *)
(* Cross-validation against the explicit-state checker.                *)

let test_explicit_agrees_on_conforming_params () =
  let cache = Fuzz.Crossval.create_cache () in
  List.iter
    (fun (n, t, f) ->
      List.iter
        (fun (spec, holds) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s holds at n=%d t=%d f=%d" spec n t f)
            true holds)
        (Fuzz.Crossval.explicit_verdicts cache ~n ~t ~f))
    [ (4, 1, 0); (4, 1, 1); (5, 1, 1) ]

let test_crossval_flags_fabricated_failure () =
  let cache = Fuzz.Crossval.create_cache () in
  let s = base_scenario in
  let fake = [ ("bv-justification", Fuzz.Oracle.Fail "fabricated") ] in
  Alcotest.(check bool) "fabricated failure is a divergence" true
    (Fuzz.Crossval.divergences cache s fake <> []);
  let ok = [ ("bv-justification", Fuzz.Oracle.Pass) ] in
  Alcotest.(check int) "pass is no divergence" 0
    (List.length (Fuzz.Crossval.divergences cache s ok))

(* ------------------------------------------------------------------ *)
(* Witness realization: mutant automaton -> checker witness -> trace.  *)

let test_mutant_witness_realizes () =
  match Fuzz.Crossval.find_witness () with
  | None -> Alcotest.fail "BV-Just0 unexpectedly holds on the broken-resilience mutant"
  | Some w ->
    let f = List.assoc "f" w.Holistic.Witness.params in
    let t = List.assoc "t" w.Holistic.Witness.params in
    Alcotest.(check bool) "witness needs f > t" true (f > t);
    (match Fuzz.Crossval.realize_witness w ~sched_seed:1 with
     | None -> Alcotest.fail "witness parameters did not realize as a concrete run"
     | Some tr ->
       let o = Fuzz.Exec.replay ~strict:true tr in
       (match
          List.assoc_opt "bv-justification" (Fuzz.Oracle.check tr.T.scenario o)
        with
        | Some (Fuzz.Oracle.Fail _) -> ()
        | _ -> Alcotest.fail "realized trace does not violate bv-justification"))

let test_realize_respects_fault_bound () =
  (* With f <= t the flooding scenario must NOT violate justification. *)
  Alcotest.(check bool) "no violation when f <= t" true
    (Fuzz.Crossval.realize ~n:4 ~t:1 ~f:1 ~value:0 ~sched_seed:1 = None)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "fuzz"
    [
      ( "network",
        [
          Alcotest.test_case "fifo + find + drop" `Quick test_network_fifo;
          Alcotest.test_case "compaction keeps the fifo view" `Quick
            test_network_compaction;
          Alcotest.test_case "bad destination" `Quick test_network_bad_destination;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "rejects non-pending custom pick" `Quick
            test_scheduler_rejects_foreign_pick;
          Alcotest.test_case "custom None falls back to oldest" `Quick
            test_scheduler_custom_none_falls_back;
        ] );
      ( "trace",
        [
          Alcotest.test_case "json roundtrip" `Quick test_trace_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_trace_rejects_garbage;
        ] );
      ( "byzantine",
        [
          Alcotest.test_case "silent sends nothing" `Quick test_silent_sends_nothing;
          Alcotest.test_case "equivocate pattern" `Quick test_equivocate_pattern;
          Alcotest.test_case "noise is seed-deterministic" `Quick test_noise_deterministic;
          Alcotest.test_case "scripted exact emission" `Quick test_scripted_exact_emission;
          Alcotest.test_case "bv properties hold under each adversary (f = t)" `Quick
            test_bv_holds_under_each_adversary;
        ] );
      ( "exec",
        [
          Alcotest.test_case "run records a replayable trace" `Quick
            test_run_records_replayable_trace;
          Alcotest.test_case "strict replay detects divergence" `Quick
            test_replay_detects_divergence;
          Alcotest.test_case "drop faults gate liveness oracles" `Quick
            test_drop_faults_gate_liveness;
          Alcotest.test_case "healing partition preserves liveness" `Quick
            test_partition_heals_and_liveness_holds;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "deterministic per seed" `Quick test_campaign_deterministic;
          Alcotest.test_case "conforming profile is clean" `Quick
            test_campaign_conforming_clean;
          Alcotest.test_case "broken profile detects, shrinks, replays" `Quick
            test_campaign_broken_detects_and_shrinks;
          Alcotest.test_case "report json shape" `Quick test_report_json_shape;
        ] );
      ( "crossval",
        [
          Alcotest.test_case "explicit checker agrees on conforming params" `Quick
            test_explicit_agrees_on_conforming_params;
          Alcotest.test_case "fabricated failure flagged as divergence" `Quick
            test_crossval_flags_fabricated_failure;
        ] );
      ( "witness",
        [
          Alcotest.test_case "mutant witness realizes as a violating run" `Quick
            test_mutant_witness_realizes;
          Alcotest.test_case "realization respects the fault bound" `Quick
            test_realize_respects_fault_bound;
        ] );
    ]
