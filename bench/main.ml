(* Benchmark harness: regenerates the paper's experimental evaluation
   (Section 6).

   The paper's evaluation consists of one table (Table 2) plus one
   in-text result; Figures 1-4 are algorithm/automaton diagrams, which
   are regenerated as DOT files by `holistic dot` (see bin/).

   Sections:
   1. Table 2 - per (TA, property): TA size, #schemas, average schema
      length, wall-clock verification time.  The naive-consensus rows
      run under an explicit budget and abort, which is this
      reproduction's analogue of the paper's ">24h on 64 cores".
   2. The in-text counterexample: Inv1_0 under the broken resilience
      condition n > 2t, with generation time (paper: ~4 s).
   3. Incremental vs flat discharge: every bundled property solved by
      both engines, verdict-compared, solver-step-compared, and written
      as machine-readable JSON (BENCH_3.json; --bench-json PATH).
   4. Bechamel micro-benchmarks of the components (ablations).

   Usage: dune exec bench/main.exe [-- --quick] [-- --naive-budget S] [-- --jobs N]
          [-- --slice] [-- --no-incremental] [-- --bench-json PATH]
          [-- --bench6-json PATH] [-- --bench7-json PATH]
          [-- --bench8-json PATH] [-- --bench9-json PATH]
          [-- --bench10-json PATH] [-- --daemon-bin PATH]
          [-- --checkpoint DIR] [-- --resume] [-- --checkpoint-every N] *)

let quick = Array.exists (( = ) "--quick") Sys.argv
let slice = Array.exists (( = ) "--slice") Sys.argv
let incremental = not (Array.exists (( = ) "--no-incremental") Sys.argv)

let usage_fail flag value expected =
  Printf.eprintf "bench: %s expects %s, got %S\n" flag expected value;
  exit 2

(* Flag values live one slot after their flag.  Scanning starts at 1:
   slot 0 is the executable path, which must never match a flag name. *)
let flag_value name =
  let rec find i =
    if i >= Array.length Sys.argv then None
    else if Sys.argv.(i) = name then
      if i + 1 >= Array.length Sys.argv then
        usage_fail name "<missing>" "a value after the flag"
      else Some Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

let bench_json_path =
  match flag_value "--bench-json" with Some p -> p | None -> "BENCH_3.json"

let naive_budget =
  match flag_value "--naive-budget" with
  | Some b -> (
    match float_of_string_opt b with
    | Some b -> b
    | None -> usage_fail "--naive-budget" b "a number of seconds")
  | None -> if quick then 5.0 else 60.0

let jobs =
  match flag_value "--jobs" with
  | Some n -> (
    match int_of_string_opt n with
    | Some n when n >= 1 -> n
    | _ -> usage_fail "--jobs" n "a positive integer")
  | None -> Domain.recommended_domain_count ()

(* One limits value carries every budget; the sections below derive
   their variants (jobs=1, flat engine, ...) from it instead of
   restating literals. *)
let limits = { Holistic.Checker.default_limits with jobs; incremental }

(* Crash-safe Table 2: --checkpoint DIR persists one journal per row;
   --resume fast-forwards each row past its checkpointed frontier.
   SIGINT/SIGTERM flush the checkpoints and exit 130 (see lib/core). *)
let checkpoint_dir = flag_value "--checkpoint"

let resume = Array.exists (( = ) "--resume") Sys.argv

let checkpoint_every =
  match flag_value "--checkpoint-every" with
  | Some n -> (
    match int_of_string_opt n with
    | Some n when n >= 1 -> n
    | _ -> usage_fail "--checkpoint-every" n "a positive integer")
  | None -> 64

(* ------------------------------------------------------------------ *)
(* Section 1: Table 2 (see lib/report).                                 *)

let table2 () =
  print_endline "== Table 2: parameterized verification of the blockchain consensus ==";
  print_endline "   (every property is checked for all n > 3t, t >= f >= 0)";
  print_newline ();
  let rows =
    Report.table2 ~limits ~slice ?checkpoint_dir ~resume ~checkpoint_every ~quick
      ~naive_budget ()
  in
  Report.print_text stdout rows;
  print_newline ();
  (* Also emit machine-readable copies next to the build tree. *)
  let write path contents =
    let oc = open_out path in
    output_string oc contents;
    close_out oc;
    Printf.printf "(wrote %s)\n" path
  in
  write "table2.md" (Report.to_markdown rows);
  write "table2.csv" (Report.to_csv rows);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Section 2: the broken-resilience counterexample (paper: ~4 s).       *)

let counterexample () =
  print_endline "== In-text result: counterexample to Inv1_0 when the resilience";
  print_endline "   condition is weakened to n > 2t (paper reports ~4 s) ==";
  let t0 = Unix.gettimeofday () in
  let r =
    Holistic.Checker.verify Models.Simplified_ta.automaton_broken_resilience
      Models.Simplified_ta.inv1_0
  in
  (match r.outcome with
   | Holistic.Checker.Violated w ->
     Printf.printf
       "found in %.2fs with parameters %s (disagreement: D0 and D1 both reached)\n"
       (Unix.gettimeofday () -. t0)
       (String.concat ", "
          (List.map (fun (p, v) -> Printf.sprintf "%s=%d" p v) w.Holistic.Witness.params))
   | _ -> print_endline "UNEXPECTED: no counterexample found");
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Section 2b: multicore scaling — the same property checked by the
   sequential engine and by the domain pool, with per-worker
   utilisation.  Outcomes and schema counts are bit-identical by
   construction (see lib/core/pool.mli); only wall-clock differs.       *)

let speedup () =
  if jobs <= 1 then
    print_endline "== Parallel speedup: skipped (running with --jobs 1) =="
  else begin
    Printf.printf "== Parallel speedup: jobs=1 vs jobs=%d ==\n" jobs;
    (* In quick mode use the fast bv-broadcast property so the section
       stays cheap; the full run uses a simplified-consensus row, whose
       2,116 larger queries are where parallelism pays. *)
    let ta, spec =
      if quick then (Models.Bv_ta.automaton, List.hd Models.Bv_ta.table2_specs)
      else (Models.Simplified_ta.automaton, Models.Simplified_ta.inv2_0)
    in
    let u = Holistic.Universe.build ta in
    let run n =
      let limits = { limits with Holistic.Checker.jobs = n; incremental = true } in
      Holistic.Checker.verify_with_universe ~limits u spec
    in
    let seq = run 1 in
    let par = run jobs in
    Format.printf "%a@." Holistic.Checker.pp_result seq;
    Format.printf "%a@." Holistic.Checker.pp_result par;
    Format.printf "%a@?" Holistic.Checker.pp_worker_stats par;
    let same =
      seq.Holistic.Checker.stats.schemas_checked = par.Holistic.Checker.stats.schemas_checked
      && seq.stats.slots_total = par.stats.slots_total
    in
    Printf.printf "deterministic: %s; speedup: %.2fx\n"
      (if same then "yes (same schemas, same slots)" else "NO — ENGINE BUG")
      (seq.stats.time /. par.stats.time)
  end;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Section 2c: incremental vs flat schema discharge, per bundled
   property, sequentially (jobs=1, so solver-step counts are
   deterministic and comparable).  Verdicts, witnesses and schema
   counts must agree; solver steps must not regress.  The records are
   written as BENCH_3.json for CI's step-regression gate. *)

let outcome_string (r : Holistic.Checker.result) =
  match r.outcome with
  | Holistic.Checker.Holds -> "holds"
  | Holistic.Checker.Violated _ -> "violated"
  | Holistic.Checker.Aborted _ -> "aborted"
  | Holistic.Checker.Partial _ -> "partial"

let json_of_run ~ta ~(r : Holistic.Checker.result) ~inc =
  Printf.sprintf
    {|    {"ta": %S, "property": %S, "incremental": %b, "outcome": %S, "schemas": %d, "skipped": %d, "subtrees_pruned": %d, "prefix_hits": %d, "solver_steps": %d, "slots": %d, "jobs": %d, "time": %.3f}|}
    ta r.spec.Ta.Spec.name inc (outcome_string r) r.stats.schemas_checked
    r.stats.schemas_skipped r.stats.subtrees_pruned r.stats.prefix_hits
    r.stats.solver_steps r.stats.slots_total r.stats.jobs r.stats.time

let incremental_comparison () =
  print_endline "== Incremental vs flat schema discharge (jobs=1) ==";
  let cases =
    List.map (fun s -> ("bv", Models.Bv_ta.automaton, s)) Models.Bv_ta.table2_specs
    @ List.map
        (fun s -> ("simplified", Models.Simplified_ta.automaton, s))
        (if quick then [ Models.Simplified_ta.inv2_0; Models.Simplified_ta.good_0 ]
         else Models.Simplified_ta.table2_specs)
  in
  let records = ref [] in
  Printf.printf "%-14s %-12s %10s %10s %7s %9s %8s %6s\n" "TA" "Property"
    "steps-flat" "steps-inc" "ratio" "skipped" "pruned" "agree";
  List.iter
    (fun (ta_name, ta, spec) ->
      let u = Holistic.Universe.build ta in
      let run inc =
        let limits = { limits with Holistic.Checker.jobs = 1; incremental = inc } in
        Holistic.Checker.verify_with_universe ~limits u spec
      in
      let flat = run false in
      let inc = run true in
      records := json_of_run ~ta:ta_name ~r:flat ~inc:false :: !records;
      records := json_of_run ~ta:ta_name ~r:inc ~inc:true :: !records;
      let agree =
        outcome_string flat = outcome_string inc
        && flat.Holistic.Checker.stats.schemas_checked = inc.Holistic.Checker.stats.schemas_checked
        && flat.stats.slots_total = inc.stats.slots_total
      in
      let ratio =
        if inc.stats.solver_steps = 0 then Float.infinity
        else float_of_int flat.stats.solver_steps /. float_of_int inc.stats.solver_steps
      in
      Printf.printf "%-14s %-12s %10d %10d %6.2fx %9d %8d %6s\n%!" ta_name
        spec.Ta.Spec.name flat.stats.solver_steps inc.stats.solver_steps ratio
        inc.stats.schemas_skipped inc.stats.subtrees_pruned
        (if agree then "yes" else "NO!"))
    cases;
  let oc = open_out bench_json_path in
  Printf.fprintf oc "{\n  \"jobs\": 1,\n  \"mode\": %S,\n  \"results\": [\n%s\n  ]\n}\n"
    (if quick then "quick" else "full")
    (String.concat ",\n" (List.rev !records));
  close_out oc;
  Printf.printf "(wrote %s)\n" bench_json_path;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Section 2d: certificate emission and standalone replay, per bundled
   property (jobs=1).  The incremental run re-proves every UNSAT
   verdict on the certifying engine and the emitted JSONL is replayed
   by Smt.Certcheck (exact rationals, no solver code).  The records go
   to BENCH_6.json for CI's gates: no certification failures, no
   rejected certificates, and incremental solver steps still no worse
   than the flat engine's. *)

let bench6_json_path =
  match flag_value "--bench6-json" with Some p -> p | None -> "BENCH_6.json"

let replay_certificates path =
  let module J = Jsonc in
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       let l = input_line ic in
       if String.trim l <> "" then lines := l :: !lines
     done
   with End_of_file -> close_in ic);
  let t0 = Unix.gettimeofday () in
  let rejected =
    List.fold_left
      (fun bad line ->
        let j = J.of_string line in
        let kind = J.to_str (J.member "kind" j) in
        let atoms =
          List.map Smt.Certificate.atom_of_json (J.to_list (J.member "atoms" j))
        in
        let branches =
          if kind = "schema" then
            List.map
              (fun alts ->
                List.map
                  (fun cube -> List.map Smt.Certificate.atom_of_json (J.to_list cube))
                  (J.to_list alts))
              (J.to_list (J.member "branches" j))
          else []
        in
        match
          Smt.Certcheck.validate_query ~atoms ~branches
            (Smt.Certificate.of_json (J.member "cert" j))
        with
        | Ok () -> bad
        | Error _ -> bad + 1)
      0 (List.rev !lines)
  in
  (List.length !lines, rejected, Unix.gettimeofday () -. t0)

let certificates () =
  print_endline "== Certificate emission and standalone replay (jobs=1) ==";
  let cases =
    List.map (fun s -> ("bv", Models.Bv_ta.automaton, s)) Models.Bv_ta.table2_specs
    @ List.map
        (fun s -> ("simplified", Models.Simplified_ta.automaton, s))
        (if quick then [ Models.Simplified_ta.inv2_0; Models.Simplified_ta.good_0 ]
         else Models.Simplified_ta.table2_specs)
  in
  let records = ref [] in
  Printf.printf "%-14s %-12s %10s %10s %10s %6s %8s %9s\n" "TA" "Property" "steps-flat"
    "steps-inc" "cert-steps" "certs" "rejected" "check-ms";
  List.iter
    (fun (ta_name, ta, spec) ->
      let u = Holistic.Universe.build ta in
      let run ?certs inc =
        let limits = { limits with Holistic.Checker.jobs = 1; incremental = inc } in
        Holistic.Checker.verify_with_universe ~limits ?certs u spec
      in
      let flat = run false in
      let path = Filename.temp_file "holistic_bench_certs" ".jsonl" in
      let oc = open_out path in
      let sink = Holistic.Certs.create oc in
      let inc = run ~certs:sink true in
      close_out oc;
      let certs, rejected, check_t = replay_certificates path in
      Sys.remove path;
      records :=
        Printf.sprintf
          {|    {"ta": %S, "property": %S, "outcome": %S, "schemas": %d, "skipped": %d, "core_prunes": %d, "steps_flat": %d, "steps_inc": %d, "cert_steps": %d, "certificates": %d, "emit_failed": %d, "rejected": %d, "check_time_us": %d}|}
          ta_name spec.Ta.Spec.name (outcome_string inc)
          inc.Holistic.Checker.stats.schemas_checked inc.stats.schemas_skipped
          inc.stats.core_prunes flat.Holistic.Checker.stats.solver_steps
          inc.stats.solver_steps
          (Holistic.Certs.cert_steps sink)
          certs
          (Holistic.Certs.failed sink)
          rejected
          (int_of_float (check_t *. 1e6))
        :: !records;
      Printf.printf "%-14s %-12s %10d %10d %10d %6d %8d %8.1f\n%!" ta_name
        spec.Ta.Spec.name flat.Holistic.Checker.stats.solver_steps
        inc.Holistic.Checker.stats.solver_steps
        (Holistic.Certs.cert_steps sink)
        certs rejected (check_t *. 1e3))
    cases;
  let oc = open_out bench6_json_path in
  Printf.fprintf oc "{\n  \"jobs\": 1,\n  \"mode\": %S,\n  \"results\": [\n%s\n  ]\n}\n"
    (if quick then "quick" else "full")
    (String.concat ",\n" (List.rev !records));
  close_out oc;
  Printf.printf "(wrote %s)\n" bench6_json_path;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Section 2e: static discharge ablation, per bundled property
   (jobs=1, incremental).  The invariant engine's certified refutations
   must not change any observable of the verification — verdict,
   schema count, slot total — while the solver-step count can only
   shrink (statically refuted subtrees are skipped at zero steps).
   The records go to BENCH_7.json for CI's gates: every row agrees,
   static steps never exceed non-static steps, and the simplified
   model shows at least one static prune. *)

let bench7_json_path =
  match flag_value "--bench7-json" with Some p -> p | None -> "BENCH_7.json"

let static_comparison () =
  print_endline "== Static discharge vs full solving (jobs=1, incremental) ==";
  let cases =
    List.map (fun s -> ("bv", Models.Bv_ta.automaton, s)) Models.Bv_ta.table2_specs
    @ List.map
        (fun s -> ("simplified", Models.Simplified_ta.automaton, s))
        (if quick then [ Models.Simplified_ta.inv2_0; Models.Simplified_ta.good_0 ]
         else Models.Simplified_ta.table2_specs)
  in
  let records = ref [] in
  Printf.printf "%-14s %-12s %12s %12s %7s %6s\n" "TA" "Property" "steps-nostatic"
    "steps-static" "statics" "agree";
  List.iter
    (fun (ta_name, ta, spec) ->
      let u = Holistic.Universe.build ta in
      let run static =
        let limits =
          { limits with Holistic.Checker.jobs = 1; incremental = true; static }
        in
        Holistic.Checker.verify_with_universe ~limits u spec
      in
      let plain = run false in
      let stat = run true in
      let agree =
        outcome_string plain = outcome_string stat
        && plain.Holistic.Checker.stats.schemas_checked = stat.Holistic.Checker.stats.schemas_checked
        && plain.stats.slots_total = stat.stats.slots_total
      in
      records :=
        Printf.sprintf
          {|    {"ta": %S, "property": %S, "outcome": %S, "schemas": %d, "slots": %d, "static_prunes": %d, "steps_nonstatic": %d, "steps_static": %d, "agree": %b}|}
          ta_name spec.Ta.Spec.name (outcome_string stat)
          stat.Holistic.Checker.stats.schemas_checked stat.stats.slots_total
          stat.stats.static_prunes plain.Holistic.Checker.stats.solver_steps
          stat.stats.solver_steps agree
        :: !records;
      Printf.printf "%-14s %-12s %12d %12d %7d %6s\n%!" ta_name spec.Ta.Spec.name
        plain.Holistic.Checker.stats.solver_steps stat.stats.solver_steps
        stat.stats.static_prunes
        (if agree then "yes" else "NO!"))
    cases;
  let oc = open_out bench7_json_path in
  Printf.fprintf oc "{\n  \"jobs\": 1,\n  \"mode\": %S,\n  \"results\": [\n%s\n  ]\n}\n"
    (if quick then "quick" else "full")
    (String.concat ",\n" (List.rev !records));
  close_out oc;
  Printf.printf "(wrote %s)\n" bench7_json_path;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Section 2f: discharge cache and portfolio (jobs=1, incremental).
   Three passes per bundled property: an uncached reference, a cold
   portfolio pass (one cache shared across every property, so later
   rows can hit entries earlier rows populated — cross-property reuse),
   and a warm rerun of the whole sweep against the populated cache.
   Verdicts, schema counts and slot totals must agree across all three
   passes; the warm pass answers repeated leaf discharges from the
   cache at zero solver steps.  The records go to BENCH_8.json for
   CI's gates: every row agrees, the warm solver-step total is at most
   half the uncached total, and the expensive simplified rows (Inv1_*,
   SRound-Term) complete in less wall-clock when warm. *)

let bench8_json_path =
  match flag_value "--bench8-json" with Some p -> p | None -> "BENCH_8.json"

let cache_comparison () =
  print_endline
    "== Discharge cache + portfolio: uncached vs cold vs warm (jobs=1, incremental) ==";
  let cases =
    List.map (fun s -> ("bv", Models.Bv_ta.automaton, s)) Models.Bv_ta.table2_specs
    @ List.map
        (fun s -> ("simplified", Models.Simplified_ta.automaton, s))
        (* Quick mode keeps the two rows CI's warm-wall-clock gate
           names; the full run sweeps all of Table 2's simplified
           properties. *)
        (if quick then [ Models.Simplified_ta.inv1_0; Models.Simplified_ta.sround_term ]
         else Models.Simplified_ta.table2_specs)
  in
  let limits = { limits with Holistic.Checker.jobs = 1; incremental = true } in
  let portfolio = Smt.Portfolio.create (Smt.Qcache.create ()) in
  (* Pass 1+2 per property: uncached reference, then cold (populating). *)
  let cold_runs =
    List.map
      (fun (ta_name, ta, spec) ->
        let u = Holistic.Universe.build ta in
        let uncached = Holistic.Checker.verify_with_universe ~limits u spec in
        let cold =
          Holistic.Checker.verify_with_universe ~limits ~portfolio u spec
        in
        (ta_name, u, spec, uncached, cold))
      cases
  in
  (* Pass 3 only after the cold sweep finished: every warm run sees the
     cache entries of all properties, not just its predecessors'. *)
  let records = ref [] in
  Printf.printf "%-14s %-12s %9s %9s %9s %11s %6s %7s %7s %7s %6s\n" "TA"
    "Property" "steps-unc" "steps-cold" "steps-warm" "warm-hits" "cross"
    "t-unc" "t-cold" "t-warm" "agree";
  List.iter
    (fun (ta_name, u, spec, uncached, cold) ->
      let warm = Holistic.Checker.verify_with_universe ~limits ~portfolio u spec in
      let agree =
        outcome_string uncached = outcome_string cold
        && outcome_string uncached = outcome_string warm
        && uncached.Holistic.Checker.stats.schemas_checked
           = cold.Holistic.Checker.stats.schemas_checked
        && uncached.stats.schemas_checked = warm.stats.schemas_checked
        && uncached.stats.slots_total = cold.stats.slots_total
        && uncached.stats.slots_total = warm.stats.slots_total
      in
      let cc = cold.stats.cache and wc = warm.stats.cache in
      records :=
        Printf.sprintf
          {|    {"ta": %S, "property": %S, "outcome": %S, "agree": %b, "schemas": %d, "slots": %d, "steps_uncached": %d, "steps_cold": %d, "steps_warm": %d, "hits_cold": %d, "misses_cold": %d, "cross_cold": %d, "hits_warm": %d, "misses_warm": %d, "cross_warm": %d, "wins_interval": %d, "wins_cooper": %d, "wins_simplex": %d, "time_uncached": %.3f, "time_cold": %.3f, "time_warm": %.3f}|}
          ta_name spec.Ta.Spec.name (outcome_string warm) agree
          uncached.stats.schemas_checked uncached.stats.slots_total
          uncached.stats.solver_steps cold.stats.solver_steps
          warm.stats.solver_steps cc.Smt.Portfolio.hits cc.Smt.Portfolio.misses
          cc.Smt.Portfolio.cross wc.Smt.Portfolio.hits wc.Smt.Portfolio.misses
          wc.Smt.Portfolio.cross cc.Smt.Portfolio.w_interval
          cc.Smt.Portfolio.w_cooper cc.Smt.Portfolio.w_simplex
          uncached.stats.time cold.stats.time warm.stats.time
        :: !records;
      Printf.printf
        "%-14s %-12s %9d %9d %9d %5d/%-5d %6d %6.1fs %6.1fs %6.1fs %6s\n%!"
        ta_name spec.Ta.Spec.name uncached.stats.solver_steps
        cold.stats.solver_steps warm.stats.solver_steps wc.Smt.Portfolio.hits
        (wc.Smt.Portfolio.hits + wc.Smt.Portfolio.misses) cc.Smt.Portfolio.cross
        uncached.stats.time cold.stats.time warm.stats.time
        (if agree then "yes" else "NO!"))
    cold_runs;
  let oc = open_out bench8_json_path in
  Printf.fprintf oc "{\n  \"jobs\": 1,\n  \"mode\": %S,\n  \"results\": [\n%s\n  ]\n}\n"
    (if quick then "quick" else "full")
    (String.concat ",\n" (List.rev !records));
  close_out oc;
  Printf.printf "(wrote %s)\n" bench8_json_path;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Section 2g: the model zoo sweep.  Every Models.Zoo entry is verified
   against every registered property and compared with the registry's
   expected verdict; disagreement is an engine or registry bug.  The
   records go to BENCH_9.json for CI's zoo gates: every row agrees and
   every row is decided (no aborts — the zoo models are small by
   construction). *)

let bench9_json_path =
  match flag_value "--bench9-json" with Some p -> p | None -> "BENCH_9.json"

let zoo_sweep () =
  print_endline "== Model zoo: expected verdict per (entry, property) ==";
  let records = ref [] in
  Printf.printf "%-12s %-16s %-9s %-9s %9s %7s %7s %6s\n" "Entry" "Property"
    "expected" "outcome" "schemas" "steps" "time" "agree";
  List.iter
    (fun (e : Models.Zoo.entry) ->
      let u = Holistic.Universe.build e.Models.Zoo.automaton in
      List.iter
        (fun ((spec : Ta.Spec.t), expected) ->
          let r = Holistic.Checker.verify_with_universe ~limits u spec in
          let expected_s = Models.Zoo.verdict_to_string expected in
          let agree = outcome_string r = expected_s in
          records :=
            Printf.sprintf
              {|    {"ta": %S, "property": %S, "expected": %S, "outcome": %S, "agree": %b, "schemas": %d, "slots": %d, "solver_steps": %d, "time": %.3f}|}
              e.Models.Zoo.key spec.Ta.Spec.name expected_s (outcome_string r)
              agree r.Holistic.Checker.stats.schemas_checked r.stats.slots_total
              r.stats.solver_steps r.stats.time
            :: !records;
          Printf.printf "%-12s %-16s %-9s %-9s %9d %7d %6.2fs %6s\n%!"
            e.Models.Zoo.key spec.Ta.Spec.name expected_s (outcome_string r)
            r.stats.schemas_checked r.stats.solver_steps r.stats.time
            (if agree then "yes" else "NO!"))
        e.Models.Zoo.specs)
    Models.Zoo.entries;
  let oc = open_out bench9_json_path in
  Printf.fprintf oc "{\n  \"jobs\": %d,\n  \"mode\": %S,\n  \"results\": [\n%s\n  ]\n}\n"
    jobs
    (if quick then "quick" else "full")
    (String.concat ",\n" (List.rev !records));
  close_out oc;
  Printf.printf "(wrote %s)\n" bench9_json_path;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Section 2h: daemon 1->N scaling.  Spawns the verification daemon
   (`holistic serve`) with 1, 2 and 4 workers, submits a batch of
   identical budget-capped jobs to each, and measures wall clock from
   first submit to last verdict.  Every daemon row must be
   byte-identical to the in-process sequential row — the speedup is
   only admissible because the verdict is provably unchanged.  The
   records go to BENCH_10.json for CI's daemon gate.  Requires the
   built CLI: pass --daemon-bin PATH (skipped otherwise, since the
   bench binary cannot assume its own build layout). *)

let bench10_json_path =
  match flag_value "--bench10-json" with Some p -> p | None -> "BENCH_10.json"

let daemon_bin = flag_value "--daemon-bin"

let daemon_scaling () =
  match daemon_bin with
  | None ->
    print_endline "== Daemon 1->N scaling: skipped (pass --daemon-bin PATH) ==";
    print_newline ()
  | Some bin ->
    print_endline "== Daemon 1->N scaling: sharded verification vs sequential ==";
    let model = "simplified" and spec_name = "Inv1_0" in
    let cap = if quick then 150 else 400 in
    let njobs = if quick then 4 else 8 in
    (* The one row every daemon job must reproduce byte-for-byte. *)
    let reference =
      match Service.Registry.find_specs model (Some spec_name) with
      | Error e ->
        Printf.eprintf "bench: %s\n" e;
        exit 2
      | Ok (ta, specs) ->
        let u = Holistic.Universe.build ta in
        let l = { Holistic.Checker.default_limits with jobs = 1; max_schemas = cap } in
        let r = Holistic.Checker.verify_with_universe ~limits:l u (List.hd specs) in
        Jsonc.to_string (Service.Protocol.row_of_result ~model r)
    in
    let state_root =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "holistic-bench10-%d" (Unix.getpid ()))
    in
    let sweep workers =
      let state_dir = Filename.concat state_root (string_of_int workers) in
      let args =
        [|
          bin; "serve"; "--state"; state_dir;
          "--workers"; string_of_int workers;
          "--slice-size"; "32"; "--worker-ckpt-every"; "16";
        |]
      in
      let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
      let pid = Unix.create_process bin args devnull devnull devnull in
      Unix.close devnull;
      Fun.protect
        ~finally:(fun () ->
          (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
          ignore (Unix.waitpid [] pid))
        (fun () ->
          match Service.Client.connect ~state_dir () with
          | Error e ->
            Printf.eprintf "bench: daemon (%d workers) unreachable: %s\n" workers e;
            exit 2
          | Ok c ->
            Fun.protect
              ~finally:(fun () -> Service.Client.close c)
              (fun () ->
                let t0 = Unix.gettimeofday () in
                let ids =
                  List.concat_map
                    (fun _ ->
                      match
                        Service.Client.submit c ~model ~spec:spec_name
                          ~max_schemas:cap ()
                      with
                      | Ok ids -> ids
                      | Error e ->
                        Printf.eprintf "bench: submit failed: %s\n" e;
                        exit 2)
                    (List.init njobs Fun.id)
                in
                let rows =
                  match Service.Client.wait_jobs c ids with
                  | Ok rows -> List.map (fun (_, r) -> Jsonc.to_string r) rows
                  | Error e ->
                    Printf.eprintf "bench: wait failed: %s\n" e;
                    exit 2
                in
                let wall = Unix.gettimeofday () -. t0 in
                let agree =
                  List.length rows = njobs
                  && List.for_all (String.equal reference) rows
                in
                (wall, agree)))
    in
    Printf.printf "%8s %6s %9s %8s %6s\n" "workers" "jobs" "wall" "speedup" "agree";
    let baseline = ref None in
    let records =
      List.map
        (fun workers ->
          let wall, agree = sweep workers in
          let base = match !baseline with None -> baseline := Some wall; wall | Some b -> b in
          let speedup = if wall > 0.0 then base /. wall else 0.0 in
          Printf.printf "%8d %6d %8.2fs %7.2fx %6s\n%!" workers njobs wall speedup
            (if agree then "yes" else "NO!");
          Printf.sprintf
            {|    {"workers": %d, "jobs": %d, "cap": %d, "wall_s": %.3f, "speedup": %.3f, "agree": %b}|}
            workers njobs cap wall speedup agree)
        [ 1; 2; 4 ]
    in
    let oc = open_out bench10_json_path in
    Printf.fprintf oc
      "{\n  \"model\": %S,\n  \"property\": %S,\n  \"mode\": %S,\n  \"results\": [\n%s\n  ]\n}\n"
      model spec_name
      (if quick then "quick" else "full")
      (String.concat ",\n" records);
    close_out oc;
    Printf.printf "(wrote %s)\n" bench10_json_path;
    print_newline ()

(* ------------------------------------------------------------------ *)
(* Section 3: Bechamel micro-benchmarks.                                *)

let micro () =
  print_endline "== Micro-benchmarks (Bechamel; one Test per component) ==";
  let open Bechamel in
  let bv = Models.Bv_ta.automaton in
  let bv_u = Holistic.Universe.build bv in
  let spec = List.hd Models.Bv_ta.table2_specs in
  let deep_schema =
    let result = ref [] in
    ignore
      (Holistic.Schema.enumerate bv_u spec ~on_schema:(fun s ->
           if List.length s = 4 then begin
             result := s;
             false
           end
           else true));
    !result
  in
  let encoded = Holistic.Encode.encode bv_u spec deep_schema in
  let tests =
    [
      Test.make ~name:"universe-build(bv)"
        (Staged.stage (fun () -> ignore (Holistic.Universe.build bv)));
      Test.make ~name:"schema-enumeration(bv)"
        (Staged.stage (fun () -> ignore (Holistic.Schema.count bv_u spec ~limit:10_000)));
      Test.make ~name:"encode-deep-schema(bv)"
        (Staged.stage (fun () -> ignore (Holistic.Encode.encode bv_u spec deep_schema)));
      Test.make ~name:"lia-solve-deep-schema(bv)"
        (Staged.stage (fun () -> ignore (Smt.Lia.solve encoded.Holistic.Encode.atoms)));
      Test.make ~name:"verify(BV-Just0)"
        (Staged.stage (fun () ->
             ignore (Holistic.Checker.verify_with_universe bv_u spec)));
      Test.make ~name:"explicit-check(bv,n=4)"
        (Staged.stage (fun () ->
             ignore (Explicit.check bv spec [ ("n", 4); ("t", 1); ("f", 1) ])));
      Test.make ~name:"dbft-simulation(n=4)"
        (Staged.stage (fun () ->
             ignore
               (Dbft.Runner.run
                  (Dbft.Runner.config ~n:4 ~t:1 ~inputs:[ 0; 1; 0 ]
                     ~byzantine:[ (3, Dbft.Byzantine.Equivocate) ]
                     ~scheduler:(Simnet.Scheduler.random ~seed:1) ()))));
    ]
  in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second (if quick then 0.25 else 1.0)) ()
  in
  let instance = Toolkit.Instance.monotonic_clock in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
      let stats = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols ->
          let estimate =
            match Analyze.OLS.estimates ols with
            | Some [ e ] -> Printf.sprintf "%12.0f ns/run" e
            | _ -> "n/a"
          in
          Printf.printf "%-32s %s\n%!" name estimate)
        stats)
    tests;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Section 4: pruning ablation — how much the guard implication order
   and producibility pruning shrink the schema enumeration (the design
   choices of DESIGN.md).  Enumeration only, no solving. *)

let ablation () =
  print_endline "== Ablation: schema enumeration with pruning disabled ==";
  let count ~limit ta spec ~imp ~prod =
    let u = Holistic.Universe.build ~use_implication_order:imp ~use_producibility:prod ta in
    match Holistic.Schema.count u spec ~limit with
    | `Exactly n -> string_of_int n
    | `More_than n -> Printf.sprintf ">%d" n
  in
  let line ?(limit = 200_000) label ta spec =
    let count = count ~limit in
    Printf.printf "%-28s both: %-8s no-implication: %-8s no-producibility: %-9s neither: %s\n%!"
      label
      (count ta spec ~imp:true ~prod:true)
      (count ta spec ~imp:false ~prod:true)
      (count ta spec ~imp:true ~prod:false)
      (count ta spec ~imp:false ~prod:false)
  in
  line "bv-broadcast / BV-Just0" Models.Bv_ta.automaton (List.hd Models.Bv_ta.table2_specs);
  line "simplified / Inv2_0" Models.Simplified_ta.automaton Models.Simplified_ta.inv2_0;
  if not quick then
    line ~limit:100_000 "naive / Inv2_0" Models.Naive_ta.automaton Models.Naive_ta.inv2_0;
  print_newline ()

let install_interrupt_handlers () =
  let handle = Sys.Signal_handle (fun _ -> Holistic.Checker.request_interrupt ()) in
  Sys.set_signal Sys.sigint handle;
  Sys.set_signal Sys.sigterm handle

let () =
  install_interrupt_handlers ();
  (match checkpoint_dir with
   | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
   | _ -> ());
  Printf.printf
    "Reproduction of 'Holistic Verification of Blockchain Consensus' (DISC 2022)\n";
  Printf.printf "mode: %s; naive-TA budget: %.0fs; jobs: %d (of %d recommended)%s%s\n\n"
    (if quick then "quick" else "full")
    naive_budget jobs
    (Domain.recommended_domain_count ())
    (if slice then "; slicing enabled" else "")
    (if incremental then "" else "; incremental discharge disabled");
  table2 ();
  if Holistic.Checker.interrupt_requested () then begin
    print_endline
      "interrupted — checkpoints flushed; rerun with --resume to continue Table 2";
    exit 130
  end;
  counterexample ();
  speedup ();
  incremental_comparison ();
  certificates ();
  static_comparison ();
  cache_comparison ();
  zoo_sweep ();
  daemon_scaling ();
  micro ();
  ablation ();
  print_endline "done."
